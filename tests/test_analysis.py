"""The invariant linter (``repro.analysis``) and the runtime sanitizers.

Each RPA rule gets a fixture pair — source that must be flagged and the
closest conforming variant that must stay clean — plus the suppression
layers (inline noqa, baseline round-trip) and the ``REPRO_SANITIZE=1``
runtime checks (frozen caches, shm leak detection, undo integrity).
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.analysis import (
    RULES,
    check_source,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis import sanitize
from repro.analysis.__main__ import main as lint_main
from repro.engine import EvaluationPool
from repro.exceptions import AnalysisError, SanitizerError
from repro.plan import compile_policy
from repro.policies import GreedyTreePolicy


def codes_of(findings):
    return sorted({d.code for d in findings})


def check(source, path="src/repro/mod.py", **kw):
    return check_source(source, path, **kw)


# ----------------------------------------------------------------------
# RPA001 — exact-undo conformance
# ----------------------------------------------------------------------
class TestUndoRule:
    def test_missing_revert_flagged(self):
        src = """
class P:
    supports_undo = True
    def _apply_answer(self, query, answer):
        self._undo_log.append((query, answer, None))
"""
        findings = check(src, select=["RPA001"])
        assert codes_of(findings) == ["RPA001"]
        assert "_revert_answer" in findings[0].message

    def test_unjournaled_apply_flagged(self):
        src = """
class P:
    supports_undo = True
    def _apply_answer(self, query, answer):
        self.state += 1
    def _revert_answer(self, query, answer, payload):
        self.state -= 1
"""
        findings = check(src, select=["RPA001"])
        assert any("_undo_log" in d.message for d in findings)

    def test_conforming_policy_clean(self):
        src = """
class P:
    supports_undo = True
    def _apply_answer(self, query, answer):
        self._undo_log.append((query, answer, self.state))
        self.state += 1
    def _revert_answer(self, query, answer, payload):
        self.state = payload
"""
        assert check(src, select=["RPA001"]) == []

    def test_discarded_journal_flagged(self):
        src = """
class Walker:
    def step(self, cg, label, answer):
        cg.apply_journaled(label, answer)
    def back(self, cg, journal):
        cg.restore(*journal)
"""
        findings = check(src, select=["RPA001"])
        assert any("discarded" in d.message for d in findings)

    def test_apply_without_restore_flagged(self):
        src = """
class Walker:
    def step(self, cg, label, answer):
        self.journal = cg.apply_journaled(label, answer)
"""
        findings = check(src, select=["RPA001"])
        assert any("restore" in d.message for d in findings)

    def test_paired_journal_clean(self):
        src = """
class Walker:
    def step(self, cg, label, answer):
        eliminated, old_root = cg.apply_journaled(label, answer)
        self.journal.append((eliminated, old_root))
    def back(self, cg):
        cg.restore(*self.journal.pop())
"""
        assert check(src, select=["RPA001"]) == []


# ----------------------------------------------------------------------
# RPA002 — compiled-plan immutability
# ----------------------------------------------------------------------
class TestPlanImmutabilityRule:
    def test_attribute_rebinding_flagged(self):
        src = "def hack(plan, arr):\n    plan._query = arr\n"
        findings = check(src, select=["RPA002"])
        assert codes_of(findings) == ["RPA002"]

    def test_item_store_flagged(self):
        src = "def hack(plan):\n    plan.query_ix[0] = 3\n"
        assert codes_of(check(src, select=["RPA002"])) == ["RPA002"]

    def test_aliased_item_store_flagged(self):
        src = """
def hack(plan):
    arrays = plan.payload_arrays()
    arrays["query"][0] = 3
"""
        assert codes_of(check(src, select=["RPA002"])) == ["RPA002"]

    def test_setflags_write_true_flagged(self):
        src = "def hack(arr):\n    arr.setflags(write=True)\n"
        findings = check(src, select=["RPA002"])
        assert any("setflags" in d.message for d in findings)

    def test_reads_and_copies_clean(self):
        src = """
import numpy as np

def walk(plan, nodes, answers):
    children = np.where(answers, plan.yes_child[nodes], plan.no_child[nodes])
    children[0] = 0  # fresh array from np.where, not a view
    return plan.query_ix[children]
"""
        assert check(src, select=["RPA002"]) == []

    def test_own_init_binding_clean(self):
        src = """
class WalkResult:
    def __init__(self, target_ix):
        self.target_ix = target_ix
"""
        assert check(src, select=["RPA002"]) == []

    def test_plan_constructor_module_exempt(self):
        src = "class CompiledPlan:\n    def _bind(self, q):\n        self._query = q\n"
        assert check(src, path="src/repro/plan/plan.py", select=["RPA002"]) == []
        assert check(src, path="src/repro/engine/x.py", select=["RPA002"]) != []


# ----------------------------------------------------------------------
# RPA003 — shared-memory lifecycle
# ----------------------------------------------------------------------
class TestShmRule:
    def test_never_released_flagged(self):
        src = """
from multiprocessing import shared_memory

def attach(name):
    shm = shared_memory.SharedMemory(name=name)
    return bytes(shm.buf[:8])
"""
        findings = check(src, select=["RPA003"])
        assert codes_of(findings) == ["RPA003"]

    def test_unprotected_exception_path_flagged(self):
        src = """
from multiprocessing import shared_memory

def attach(name, parse):
    shm = shared_memory.SharedMemory(name=name)
    meta = parse(shm.buf)
    shm.close()
    return meta
"""
        findings = check(src, select=["RPA003"])
        assert any("raise" in d.message for d in findings)

    def test_try_finally_clean(self):
        src = """
from multiprocessing import shared_memory

def attach(name, parse):
    shm = shared_memory.SharedMemory(name=name)
    try:
        return parse(shm.buf)
    finally:
        shm.close()
"""
        assert check(src, select=["RPA003"]) == []

    def test_escape_to_owner_clean(self):
        src = """
from multiprocessing import shared_memory

def publish(registry, key, size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    registry.add(key, shm)
    return shm
"""
        assert check(src, select=["RPA003"]) == []

    def test_with_statement_clean(self):
        src = """
from multiprocessing import shared_memory

def peek(name):
    with shared_memory.SharedMemory(name=name) as shm:
        return bytes(shm.buf[:4])
"""
        assert check(src, select=["RPA003"]) == []


# ----------------------------------------------------------------------
# RPA004 — determinism in plan/engine/serve
# ----------------------------------------------------------------------
class TestDeterminismRule:
    ENGINE = "src/repro/engine/mod.py"

    def test_wall_clock_flagged_in_scope(self):
        src = "import time\n\ndef stamp():\n    return time.time()\n"
        assert codes_of(check(src, path=self.ENGINE, select=["RPA004"])) == ["RPA004"]

    def test_out_of_scope_module_clean(self):
        src = "import time\n\ndef stamp():\n    return time.time()\n"
        clean = check(src, path="src/repro/experiments/mod.py", select=["RPA004"])
        assert clean == []

    def test_global_rng_flagged(self):
        src = "import random\n\ndef pick(xs):\n    return random.choice(xs)\n"
        assert check(src, path=self.ENGINE, select=["RPA004"]) != []

    def test_legacy_numpy_rng_flagged_default_rng_clean(self):
        bad = "import numpy as np\n\ndef noise(n):\n    return np.random.rand(n)\n"
        good = (
            "import numpy as np\n\n"
            "def noise(n, seed):\n"
            "    return np.random.default_rng(seed).random(n)\n"
        )
        assert check(bad, path=self.ENGINE, select=["RPA004"]) != []
        assert check(good, path=self.ENGINE, select=["RPA004"]) == []

    def test_set_fed_array_flagged_sorted_clean(self):
        bad = (
            "import numpy as np\n\n"
            "def ids(labels, index):\n"
            "    return np.array({index[l] for l in labels})\n"
        )
        good = (
            "import numpy as np\n\n"
            "def ids(labels, index):\n"
            "    return np.array(sorted({index[l] for l in labels}))\n"
        )
        assert check(bad, path=self.ENGINE, select=["RPA004"]) != []
        assert check(good, path=self.ENGINE, select=["RPA004"]) == []


# ----------------------------------------------------------------------
# RPA005 — process-boundary exception discipline
# ----------------------------------------------------------------------
class TestProcessExceptionRule:
    def test_bare_except_flagged(self):
        src = "def f(x):\n    try:\n        return x()\n    except:\n        return None\n"
        findings = check(src, select=["RPA005"])
        assert any("bare" in d.message for d in findings)

    def test_swallowed_broad_except_flagged(self):
        src = """
def f(walk, batch):
    try:
        frames = batch.split()
        results = [walk(f) for f in frames]
        return merge(results)
    except Exception:
        pass
"""
        assert check(src, select=["RPA005"]) != []

    def test_best_effort_teardown_clean(self):
        src = """
def drain(q):
    try:
        q.close()
    except Exception:
        pass
"""
        assert check(src, select=["RPA005"]) == []

    def test_unguarded_entry_point_flagged(self):
        src = """
def _worker(tasks, results):
    while True:
        results.put(handle(tasks.get()))

def start(ctx, tasks, results):
    return ctx.Process(target=_worker, args=(tasks, results))
"""
        findings = check(src, select=["RPA005"])
        assert any("entry point" in d.message for d in findings)

    def test_marshalling_entry_point_clean(self):
        src = """
import pickle

def _worker(tasks, results):
    while True:
        try:
            results.put(("ok", handle(tasks.get())))
        except BaseException as exc:
            results.put(("error", pickle.dumps(exc)))

def start(ctx, tasks, results):
    return ctx.Process(target=_worker, args=(tasks, results))
"""
        assert check(src, select=["RPA005"]) == []

    def test_builtin_raise_in_entry_scope_flagged(self):
        src = """
def _worker(tasks, results):
    while True:
        try:
            msg = tasks.get()
            if msg is None:
                raise ValueError("no message")
            results.put(msg)
        except BaseException as exc:
            results.put(exc)

def start(ctx):
    return ctx.Process(target=_worker)
"""
        findings = check(src, select=["RPA005"])
        assert any("ReproError" in d.message for d in findings)


# ----------------------------------------------------------------------
# RPA006 — pickle hygiene
# ----------------------------------------------------------------------
class TestPickleHygieneRule:
    def test_lambda_target_flagged(self):
        src = "def start(ctx, q):\n    return ctx.Process(target=lambda: q.put(1))\n"
        assert codes_of(check(src, select=["RPA006"])) == ["RPA006"]

    def test_nested_function_target_flagged(self):
        src = """
def start(ctx, q):
    def run():
        q.put(1)
    return ctx.Process(target=run)
"""
        assert codes_of(check(src, select=["RPA006"])) == ["RPA006"]

    def test_lambda_submit_flagged(self):
        src = "def go(pool, x):\n    return pool.submit(lambda: x + 1)\n"
        assert codes_of(check(src, select=["RPA006"])) == ["RPA006"]

    def test_module_level_target_clean(self):
        src = """
def _worker(q):
    q.put(1)

def start(ctx, q):
    return ctx.Process(target=_worker, args=(q,))
"""
        assert check(src, select=["RPA006"]) == []


# ----------------------------------------------------------------------
# RPA007 — message protocol conformance
# ----------------------------------------------------------------------
class TestProtocolRule:
    def test_unhandled_tag_flagged(self):
        src = """
def feed(tasks):
    tasks.put(("walk", 1, None))
    tasks.put(("frobnicate", 2, None))

def worker(tasks, out):
    msg = tasks.get()
    kind = msg[0]
    if kind == "walk":
        out.append(msg[1])
"""
        findings = check(src, select=["RPA007"])
        assert len(findings) == 1
        assert "'frobnicate'" in findings[0].message
        assert "no consumer dispatches" in findings[0].message

    def test_dead_dispatch_branch_flagged(self):
        src = """
def feed(tasks):
    tasks.put(("walk", 1))

def worker(tasks):
    msg = tasks.get()
    kind = msg[0]
    if kind == "wlak":
        return 1
    elif kind == "walk":
        return 2
    else:
        raise ValueError(kind)
"""
        findings = check(src, select=["RPA007"])
        assert len(findings) == 1
        assert "'wlak'" in findings[0].message and "dead" in findings[0].message

    def test_duplicate_tag_flagged(self):
        src = """
def worker(tasks):
    msg = tasks.get()
    kind = msg[0]
    if kind == "walk":
        return 1
    elif kind == "walk":
        return 2
    else:
        raise ValueError(kind)
"""
        findings = check(src, select=["RPA007"])
        assert len(findings) == 1
        assert "unreachable" in findings[0].message

    def test_missing_terminal_else_flagged(self):
        src = """
def worker(tasks):
    msg = tasks.get()
    kind = msg[0]
    if kind == "walk":
        return 1
    elif kind == "sleep":
        return 2
"""
        findings = check(src, select=["RPA007"])
        assert len(findings) == 1
        assert "no terminal else" in findings[0].message

    def test_conforming_protocol_clean(self):
        src = """
def feed(tasks):
    tasks.put(("walk", 1, None))
    tasks.put(("sleep", 2, 0.5))

def worker(tasks, out):
    while True:
        msg = tasks.get()
        if msg is None:
            return
        kind, task_id = msg[0], msg[1]
        if kind == "walk":
            out.append(task_id)
        elif kind == "sleep":
            out.append(None)
        else:
            raise ValueError(kind)
"""
        assert check(src, select=["RPA007"]) == []

    def test_producer_only_module_clean(self):
        # The consumer lives in another module; nothing to audit here.
        src = 'def feed(tasks):\n    tasks.put(("walk", 1))\n'
        assert check(src, select=["RPA007"]) == []


# ----------------------------------------------------------------------
# RPA008 — acquire/release pairing
# ----------------------------------------------------------------------
class TestResourcePairingRule:
    def test_pin_without_release_flagged(self):
        src = """
class Holder:
    def grab(self, pool, plan):
        self.key = pool.publish(plan, pin=True)
"""
        findings = check(src, select=["RPA008"])
        assert len(findings) == 1
        assert "release" in findings[0].message

    def test_pin_with_class_scope_release_clean(self):
        src = """
class Holder:
    def grab(self, pool, plan):
        self.key = pool.publish(plan, pin=True)

    def drop(self, pool):
        pool.release(self.key)
"""
        assert check(src, select=["RPA008"]) == []

    def test_unprotected_same_function_pair_flagged(self):
        src = """
def walk_once(pool, plan, hierarchy):
    key, seg = pool._acquire_for_walk(plan, hierarchy)
    run(seg)
    pool._release_after_walk(key)
"""
        findings = check(src, select=["RPA008"])
        assert len(findings) == 1
        assert "try/finally" in findings[0].message

    def test_try_finally_pair_clean(self):
        src = """
def walk_once(pool, plan, hierarchy):
    key, seg = pool._acquire_for_walk(plan, hierarchy)
    try:
        run(seg)
    finally:
        pool._release_after_walk(key)
"""
        assert check(src, select=["RPA008"]) == []

    def test_escape_to_owner_clean(self):
        src = """
class Stream:
    def __init__(self, pool, plan, hierarchy):
        self._pool = pool
        self._key, self._seg = pool._acquire_for_walk(plan, hierarchy)

    def close(self):
        self._pool._release_after_walk(self._key)
"""
        assert check(src, select=["RPA008"]) == []

    def test_shared_memory_create_without_unlink_flagged(self):
        src = """
from multiprocessing import shared_memory

def make_segment(nbytes):
    return shared_memory.SharedMemory(create=True, size=nbytes)
"""
        findings = check(src, select=["RPA008"])
        assert len(findings) == 1
        assert "unlink" in findings[0].message

    def test_shared_memory_with_unlink_clean(self):
        src = """
from multiprocessing import shared_memory

def make_segment(nbytes):
    return shared_memory.SharedMemory(create=True, size=nbytes)

def drop_segment(shm):
    shm.close()
    shm.unlink()
"""
        assert check(src, select=["RPA008"]) == []


# ----------------------------------------------------------------------
# RPA009 — fault-site registry discipline
# ----------------------------------------------------------------------
class TestFaultSiteRule:
    def test_registered_literal_clean(self):
        src = """
from repro.analysis.schedule import schedule_point

def collect():
    schedule_point("pool.collect")
"""
        assert check(src, select=["RPA009"]) == []

    def test_unregistered_label_flagged(self):
        src = """
from repro.analysis.schedule import schedule_point

def collect():
    schedule_point("pool.not_a_site")
"""
        findings = check(src, select=["RPA009"])
        assert len(findings) == 1
        assert "FAULT_SITES" in findings[0].message

    def test_computed_label_flagged(self):
        src = """
from repro.analysis.schedule import schedule_point

def collect(name):
    schedule_point("pool." + name)
"""
        findings = check(src, select=["RPA009"])
        assert len(findings) == 1
        assert "literal" in findings[0].message

    def test_maybe_inject_adhoc_label_tolerated(self):
        # maybe_inject exists for ad-hoc boundaries; it falls back to
        # FaultInjectedError, so unregistered labels are fine — but
        # computed ones still are not.
        src = """
from repro.faults.inject import maybe_inject

def answer(query):
    maybe_inject("my_test.boundary")
"""
        assert check(src, select=["RPA009"]) == []

    def test_maybe_inject_computed_label_flagged(self):
        src = """
from repro.faults.inject import maybe_inject

def answer(site):
    maybe_inject(f"oracle.{site}")
"""
        findings = check(src, select=["RPA009"])
        assert len(findings) == 1
        assert "literal" in findings[0].message

    def test_unregistered_label_outside_repo_tree_tolerated(self):
        # Registration is only enforced for repo source; test helpers
        # exploring schedules with their own labels are fine.
        src = """
from repro.analysis.schedule import schedule_point

def probe():
    schedule_point("scratch.site")
"""
        assert check(src, path="tests/helper.py", select=["RPA009"]) == []

    def test_registry_maps_every_site_to_repro_errors(self):
        from repro.exceptions import ReproError
        from repro.faults.sites import FAULT_SITES

        for label, exc in FAULT_SITES.items():
            assert isinstance(exc, type) and issubclass(exc, ReproError), label


# ----------------------------------------------------------------------
# Interprocedural reach (the call-graph layer under RPA002/RPA005)
# ----------------------------------------------------------------------
class TestInterprocedural:
    def test_two_hop_alias_laundering_flagged(self):
        src = """
def _arrays(plan):
    return plan.query_ix

def _query(plan):
    return _arrays(plan)

def hack(plan):
    arr = _query(plan)
    arr[0] = 3
"""
        assert codes_of(check(src, select=["RPA002"])) == ["RPA002"]

    def test_copy_returning_helper_clean(self):
        src = """
def _snapshot(plan):
    return plan.query_ix.copy()

def fine(plan):
    arr = _snapshot(plan)
    arr[0] = 3
"""
        assert check(src, select=["RPA002"]) == []

    def test_builtin_raise_two_calls_deep_flagged(self):
        src = """
def _validate(msg):
    if msg is None:
        raise ValueError("no message")
    return msg

def _handle(msg):
    return _validate(msg)

def _worker(tasks, results):
    while True:
        try:
            results.put(_handle(tasks.get()))
        except BaseException as exc:
            results.put(exc)

def start(ctx):
    return ctx.Process(target=_worker)
"""
        findings = check(src, select=["RPA005"])
        assert any("ReproError" in d.message for d in findings)

    def test_non_process_target_call_is_not_an_entry(self):
        src = """
def _job():
    raise ValueError("not a worker, no envelope needed")

def start(registry):
    return registry.Timer(target=_job)
"""
        assert check(src, select=["RPA005"]) == []


# ----------------------------------------------------------------------
# Suppression: noqa and baseline
# ----------------------------------------------------------------------
class TestSuppression:
    BAD = "def hack(plan):\n    plan.query_ix[0] = 3{comment}\n"

    def test_noqa_with_matching_code_suppresses(self):
        src = self.BAD.format(
            comment="  # repro: noqa RPA002 - fixture justification"
        )
        assert check(src, select=["RPA002"]) == []

    def test_noqa_with_other_code_does_not_suppress(self):
        src = self.BAD.format(comment="  # repro: noqa RPA001 - wrong code")
        assert check(src, select=["RPA002"]) != []

    def test_blanket_noqa_without_codes_does_not_suppress(self):
        src = self.BAD.format(comment="  # repro: noqa")
        assert check(src, select=["RPA002"]) != []

    def test_baseline_round_trip(self, tmp_path):
        bad = tmp_path / "repro" / "engine" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        findings = lint_paths([bad])
        assert codes_of(findings) == ["RPA004"]

        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        assert lint_paths([bad], baseline=str(baseline)) == []

        # A *new* finding is not covered by the old baseline.
        bad.write_text(
            "import time\n\n"
            "def stamp():\n    return time.time()\n\n"
            "def stamp2():\n    return time.monotonic()\n"
        )
        survivors = lint_paths([bad], baseline=str(baseline))
        assert len(survivors) == 1 and "monotonic" in survivors[0].message

    def test_corrupt_baseline_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{not json")
        with pytest.raises(AnalysisError):
            load_baseline(target)
        target.write_text('{"version": 99, "entries": []}')
        with pytest.raises(AnalysisError):
            load_baseline(target)

    def test_unknown_rule_code_raises(self):
        with pytest.raises(AnalysisError):
            check_source("x = 1\n", select=["RPA999"])


# ----------------------------------------------------------------------
# Driver and CLI
# ----------------------------------------------------------------------
class TestDriver:
    def test_rule_registry_complete(self):
        assert sorted(RULES) == [
            "RPA001", "RPA002", "RPA003", "RPA004", "RPA005", "RPA006",
            "RPA007", "RPA008", "RPA009",
        ]

    def test_repo_tree_is_clean(self):
        assert lint_paths(["src/repro"]) == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean), "-q"]) == 0

        bad = tmp_path / "bad.py"
        bad.write_text("def hack(plan):\n    plan.query_ix[0] = 3\n")
        assert lint_main([str(bad), "-q"]) == 1
        out = capsys.readouterr().out
        assert f"{bad.as_posix()}:2: RPA002" in out

        assert lint_main([str(tmp_path / "missing.py")]) == 2
        assert lint_main(["--select", "NOPE", str(clean)]) == 2

    def test_cli_write_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def hack(plan):\n    plan.query_ix[0] = 3\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(bad), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert lint_main([str(bad), "--baseline", str(baseline), "-q"]) == 0

    def test_cli_command_delegation(self):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "src/repro", "-q"]) == 0

    def test_cli_github_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def hack(plan):\n    plan.query_ix[0] = 3\n")
        assert lint_main([str(bad), "--format=github"]) == 1
        out = capsys.readouterr().out
        assert (
            f"::error file={bad.as_posix()},line=2,title=RPA002::" in out
        )

    def test_cli_unknown_ignore_code_fails_loudly(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main(["--ignore", "RPA999", str(clean)]) == 2
        assert "RPA999" in capsys.readouterr().err

    def test_diagnostics_order_is_input_order_independent(self, tmp_path):
        one = tmp_path / "a_mod.py"
        one.write_text(
            "def hack(plan):\n"
            "    plan.query_ix[0] = 3\n"
            "    plan.yes_child[0] = 1\n"
        )
        two = tmp_path / "z_mod.py"
        two.write_text("def hack(plan):\n    plan.no_child[0] = 7\n")
        forward = lint_paths([one, two])
        backward = lint_paths([two, one])
        assert forward == backward
        keys = [(d.path, d.line, d.code, d.message) for d in forward]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# Lint profiles (tests/benchmarks trees)
# ----------------------------------------------------------------------
class TestLintProfiles:
    def test_unknown_profile_rejected(self):
        with pytest.raises(AnalysisError, match="profile"):
            check("x = 1\n", profile="nope")

    def test_tests_profile_scopes_rpa004_everywhere(self):
        # Outside the repro package RPA004 is normally silent; the tests
        # profile drops the package gate so test/bench code is audited.
        src = "import numpy as np\n\ndef seed():\n    np.random.seed(0)\n"
        assert check(src, path="tests/test_x.py", select=["RPA004"]) == []
        findings = check(
            src, path="tests/test_x.py", select=["RPA004"], profile="tests"
        )
        assert codes_of(findings) == ["RPA004"]

    def test_tests_profile_tolerates_wall_clock(self):
        # Tests time things legitimately; the determinism rule keeps its
        # RNG checks but drops wall-clock verdicts under this profile.
        src = "import time\n\ndef elapsed(t0):\n    return time.time() - t0\n"
        assert (
            check(
                src, path="tests/test_x.py", select=["RPA004"],
                profile="tests",
            )
            == []
        )

    def test_cli_profile_flag(self, tmp_path, capsys):
        bad = tmp_path / "test_timing.py"
        bad.write_text("import numpy as np\n\ndef s():\n    np.random.seed(0)\n")
        assert lint_main([str(bad), "-q"]) == 0  # out of scope by default
        assert lint_main([str(bad), "--profile", "tests", "-q"]) == 1

    def test_repo_test_and_bench_trees_clean_under_tests_profile(self):
        findings = lint_paths(
            ["tests", "benchmarks"],
            select=["RPA004", "RPA006"],
            profile="tests",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Baseline drift
# ----------------------------------------------------------------------
class TestBaselineDrift:
    SRC = (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
    )

    def _baselined(self, tmp_path):
        mod = tmp_path / "repro" / "engine" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(self.SRC)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, lint_paths([mod]))
        return mod, baseline

    def test_line_move_stays_suppressed(self, tmp_path):
        mod, baseline = self._baselined(tmp_path)
        mod.write_text("# one\n# two\n# three\n" + self.SRC)
        assert lint_paths([mod], baseline=str(baseline)) == []

    def test_content_change_resurfaces(self, tmp_path):
        mod, baseline = self._baselined(tmp_path)
        mod.write_text(self.SRC.replace("time.time()", "time.time() + 1"))
        survivors = lint_paths([mod], baseline=str(baseline))
        assert codes_of(survivors) == ["RPA004"]


# ----------------------------------------------------------------------
# Runtime sanitizers (REPRO_SANITIZE=1)
# ----------------------------------------------------------------------
@pytest.fixture
def sanitizing(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


class TestSanitizers:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.enabled()
        for value in ("0", "false", "off", ""):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert not sanitize.enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.enabled()

    def test_plan_arrays_reject_writes(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with pytest.raises(ValueError):
            plan.query_ix[0] = 7
        with pytest.raises(ValueError):
            plan.payload_arrays()["target"][0] = 7

    def test_reachability_caches_frozen_when_sanitizing(
        self, sanitizing, vehicle_hierarchy
    ):
        matrix = vehicle_hierarchy.reachability_matrix()
        with pytest.raises(ValueError):
            matrix[0, 0] = False
        tin, tout = vehicle_hierarchy.tree_intervals()
        with pytest.raises(ValueError):
            tin[0] = 99
        with pytest.raises(ValueError):
            tout[0] = 99

    def test_reachability_caches_writable_without_sanitize(
        self, monkeypatch, vehicle_hierarchy
    ):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        matrix = vehicle_hierarchy.reachability_matrix()
        assert matrix.flags.writeable

    def test_leaked_segment_detected(self, sanitizing):
        name = f"rp_{os.getpid()}_deadbeef"
        shm = shared_memory.SharedMemory(create=True, size=16, name=name)
        try:
            with pytest.raises(SanitizerError, match="survived"):
                sanitize.check_segments_released([name], "test-owner")
        finally:
            shm.close()
            shm.unlink()
        # Gone now: the same check passes.
        sanitize.check_segments_released([name], "test-owner")

    def test_pool_close_catches_unlink_leak(
        self, sanitizing, monkeypatch, vehicle_hierarchy
    ):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        pool = EvaluationPool(1, start_method="fork")
        pool.publish(plan, pin=True)
        leaked = list(pool._created_segments)
        # Simulate the leak shape: close() tears down but unlink is lost.
        monkeypatch.setattr(
            EvaluationPool, "_unlink", staticmethod(lambda entry: None)
        )
        try:
            with pytest.raises(SanitizerError, match="survived"):
                pool.close()
        finally:
            for name in leaked:
                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()

    def test_pool_close_clean_under_sanitize(self, sanitizing, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with EvaluationPool(1, start_method="fork") as pool:
            pool.publish(plan, pin=True)
        # close() ran the leak check without raising.

    def test_inexact_undo_caught(self, sanitizing, vehicle_hierarchy):
        class BrokenUndo(GreedyTreePolicy):
            name = "BrokenUndo"

            def _revert_answer(self, query, answer, payload):
                super()._revert_answer(query, answer, payload)
                self._tilde_p[0] += 0.125  # drift the restored state

        with pytest.raises(SanitizerError, match="_tilde_p"):
            compile_policy(BrokenUndo(), vehicle_hierarchy)

    def test_exact_undo_passes(self, sanitizing, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        assert plan.policy_name == "GreedyTree"

    def test_cache_exclusions_respected(self, sanitizing, vehicle_hierarchy):
        # heap_children maintains a lazily-rebuilt cache that undo clears
        # instead of restoring; its declared exclusion keeps the checker
        # focused on logical state.
        plan = compile_policy(
            GreedyTreePolicy(heap_children=True), vehicle_hierarchy
        )
        assert plan.policy_name == "GreedyTree"

    def test_broken_undo_unnoticed_without_sanitize(
        self, monkeypatch, vehicle_hierarchy
    ):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)

        class QuietlyBroken(GreedyTreePolicy):
            name = "QuietlyBroken"
            plan_cacheable = False

            def _revert_answer(self, query, answer, payload):
                super()._revert_answer(query, answer, payload)
                self._last_path = list(self._last_path)  # same values, new list

        # Identical *values* still compile fine without the checker; the
        # point is that the checker is opt-in, not a behaviour change.
        plan = compile_policy(QuietlyBroken(), vehicle_hierarchy)
        assert plan.policy_name == "QuietlyBroken"
