"""Property suite for the batched noisy-oracle belief engine.

The engine contract, mirroring ``test_bit_identity.py`` for the noise
study: for any hierarchy, policy, error model, and mitigation knobs,
:func:`repro.engine.belief.simulate_noisy` is *bit-identical* to the
per-session reference (one oracle stack + ``run_search`` per session)
— same labels, same question/vote counts, same prices, same outcome
codes — and stays bit-identical to itself whichever way the batch
executes: inline in one block, chunked (``batch_size=``), sharded over
a per-call process pool (``jobs=``), on a warm
:class:`~repro.engine.EvaluationPool`, or with any splitter kernel
forced (``kind=``).  Hypothesis searches random trees/DAGs for
violations and shrinks any counterexample to a printed seed;
``derandomize=True`` keeps CI stable run to run.

The posterior half of the suite pins the Bayes step itself: rows are
proper distributions (sum to one), every kernel kind computes the same
numbers, and the posterior concentrates on the true target as the
error rate drops.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ErrorRateModel
from repro.engine import EvaluationPool, simulate_noisy
from repro.engine.belief import (
    OUTCOME_MAP,
    make_belief_updater,
    posterior_from_transcript,
    reference_noisy,
)
from repro.engine.vector import SPLITTER_KINDS
from repro.exceptions import HierarchyError, OracleError, SearchError
from repro.policies import make_policy
from repro.testing import make_random_dag, make_random_tree, random_distribution

#: Modest example counts: every example simulates hundreds of noisy
#: sessions through the reference loop, so the suite trades
#: exhaustiveness per run for a tolerable wall-clock (CI accumulates
#: coverage across pushes).
_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

_POOL: EvaluationPool | None = None


@pytest.fixture(autouse=True, scope="module")
def _module_pool():
    """One warm pool for the whole module (hypothesis examples must not
    pay a pool spin-up each, and function-scoped fixtures do not mix
    with ``@given``)."""
    global _POOL
    _POOL = EvaluationPool(workers=2)
    try:
        yield
    finally:
        _POOL.close()
        _POOL = None


def _hierarchy(kind: str, n: int, seed: int):
    if kind == "tree":
        return make_random_tree(n, seed=seed)
    return make_random_dag(n, seed=seed)


def _policy_for(kind: str):
    return make_policy("greedy-tree" if kind == "tree" else "greedy-dag")


def _assert_same(a, b, context: str) -> None:
    assert np.array_equal(a.target_ix, b.target_ix), context
    assert np.array_equal(a.labels, b.labels), context
    assert np.array_equal(a.queries, b.queries), context
    assert np.array_equal(a.vote_queries, b.vote_queries), context
    assert np.array_equal(a.prices, b.prices), context
    assert np.array_equal(a.run_labels, b.run_labels), context
    assert np.array_equal(a.run_outcomes, b.run_outcomes), context
    assert np.array_equal(a.run_queries, b.run_queries), context


class TestBitIdenticalToReference:
    """simulate_noisy reproduces the per-session oracle stack bit for bit."""

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["tree", "dag"]),
        n=st.integers(min_value=8, max_value=32),
        persistent=st.booleans(),
        votes=st.sampled_from([1, 3]),
        repeats=st.sampled_from([1, 2]),
    )
    def test_matches_reference(self, seed, kind, n, persistent, votes, repeats):
        hierarchy = _hierarchy(kind, n, seed)
        distribution = random_distribution(hierarchy, seed)
        model = ErrorRateModel(0.15, persistent=persistent)
        common = dict(
            error_model=model,
            replications=2,
            seed=seed,
            votes=votes,
            repeats=repeats,
        )
        batched = simulate_noisy(
            _policy_for(kind), hierarchy, distribution, **common
        )
        reference = reference_noisy(
            _policy_for(kind), hierarchy, distribution, **common
        )
        _assert_same(
            batched,
            reference,
            f"diverged from reference: kind={kind} n={n} seed={seed} "
            f"persistent={persistent} votes={votes} repeats={repeats}",
        )

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=10, max_value=28),
        persistent=st.booleans(),
    )
    def test_migs_on_dag_repeated_queries(self, seed, n, persistent):
        """MIGS revisits nodes on DAG paths — the case that exercises the
        first-visit-only uniform consumption contract of persistent noise."""
        hierarchy = make_random_dag(n, seed=seed)
        distribution = random_distribution(hierarchy, seed)
        model = ErrorRateModel(0.2, persistent=persistent)
        common = dict(error_model=model, replications=2, seed=seed)
        batched = simulate_noisy(
            make_policy("migs"), hierarchy, distribution, **common
        )
        reference = reference_noisy(
            make_policy("migs"), hierarchy, distribution, **common
        )
        _assert_same(
            batched,
            reference,
            f"migs diverged: n={n} seed={seed} persistent={persistent}",
        )

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=8, max_value=24),
    )
    def test_node_rates_match_reference(self, seed, n):
        hierarchy = make_random_tree(n, seed=seed)
        distribution = random_distribution(hierarchy, seed)
        rng = np.random.default_rng(seed)
        overrides = {
            node: float(rate)
            for node, rate in zip(
                hierarchy.nodes[::3], rng.uniform(0.0, 0.45, size=hierarchy.n)
            )
        }
        model = ErrorRateModel(0.1, node_rates=overrides)
        common = dict(error_model=model, replications=2, seed=seed, votes=3)
        batched = simulate_noisy(
            _policy_for("tree"), hierarchy, distribution, **common
        )
        reference = reference_noisy(
            _policy_for("tree"), hierarchy, distribution, **common
        )
        _assert_same(
            batched, reference, f"node_rates diverged: n={n} seed={seed}"
        )


class TestBatchShapeInvariance:
    """The answer never depends on how the batch is sliced or where it runs."""

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["tree", "dag"]),
        n=st.integers(min_value=8, max_value=32),
        persistent=st.booleans(),
    )
    def test_all_modes(self, seed, kind, n, persistent):
        hierarchy = _hierarchy(kind, n, seed)
        distribution = random_distribution(hierarchy, seed)
        common = dict(
            error_model=ErrorRateModel(0.15, persistent=persistent),
            replications=2,
            seed=seed,
            votes=3,
        )

        def run(**extra):
            return simulate_noisy(
                _policy_for(kind), hierarchy, distribution, **common, **extra
            )

        reference = run()
        modes = {
            "batch_size=1": run(batch_size=1),
            "batch_size=5": run(batch_size=5),
            "jobs=2": run(jobs=2),
            "warm pool": run(pool=_POOL),
        }
        for splitter in SPLITTER_KINDS:
            if splitter == "tree" and kind != "tree":
                continue  # the interval kernel rejects DAGs by design
            modes[f"kind={splitter}"] = run(kind=splitter)
        for mode, result in modes.items():
            _assert_same(
                reference,
                result,
                f"{mode} diverged: kind={kind} n={n} seed={seed} "
                f"persistent={persistent}",
            )


class TestPosterior:
    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["tree", "dag"]),
        n=st.integers(min_value=8, max_value=32),
    )
    def test_rows_are_distributions(self, seed, kind, n):
        hierarchy = _hierarchy(kind, n, seed)
        distribution = random_distribution(hierarchy, seed)
        result = simulate_noisy(
            _policy_for(kind),
            hierarchy,
            distribution,
            error_model=ErrorRateModel(0.1),
            replications=2,
            seed=seed,
            track_posterior=True,
        )
        posterior = result.posterior
        assert posterior is not None
        assert posterior.shape[-1] == hierarchy.n
        assert (posterior >= 0.0).all()
        sums = posterior.reshape(-1, hierarchy.n).sum(axis=1)
        # Rows either sum to 1 or collapsed to exactly zero mass (only
        # possible when a zero-rate answer contradicts the whole prior).
        np.testing.assert_allclose(
            sums[sums > 0], 1.0, rtol=0.0, atol=1e-9
        )

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["tree", "dag"]),
        n=st.integers(min_value=10, max_value=32),
    )
    def test_tracking_never_changes_the_walk(self, seed, kind, n):
        """track_posterior is an observer: outcomes stay bit-identical."""
        hierarchy = _hierarchy(kind, n, seed)
        distribution = random_distribution(hierarchy, seed)
        common = dict(
            error_model=ErrorRateModel(0.2),
            replications=2,
            seed=seed,
        )
        plain = simulate_noisy(
            _policy_for(kind), hierarchy, distribution, **common
        )
        tracked = simulate_noisy(
            _policy_for(kind),
            hierarchy,
            distribution,
            track_posterior=True,
            **common,
        )
        _assert_same(
            plain, tracked, f"tracking changed the walk: n={n} seed={seed}"
        )

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=12, max_value=32),
    )
    def test_concentrates_as_noise_vanishes(self, seed, n):
        """Mean posterior mass on the true target grows as the rate drops."""
        hierarchy = make_random_tree(n, seed=seed)
        distribution = random_distribution(hierarchy, seed)

        def mass_on_target(rate):
            result = simulate_noisy(
                _policy_for("tree"),
                hierarchy,
                distribution,
                error_model=ErrorRateModel(rate),
                replications=3,
                seed=seed,
                track_posterior=True,
            )
            flat = result.posterior.reshape(-1, hierarchy.n)
            targets = np.repeat(result.target_ix, flat.shape[0] // len(result.target_ix))
            return float(flat[np.arange(len(flat)), targets].mean())

        assert mass_on_target(0.02) >= mass_on_target(0.35) - 1e-12

    def test_posterior_from_transcript(self, vehicle_hierarchy):
        model = ErrorRateModel(0.1)
        transcript = [("Car", True), ("Nissan", True), ("Sentra", True)]
        posterior = posterior_from_transcript(
            vehicle_hierarchy, transcript, model
        )
        assert posterior.shape == (vehicle_hierarchy.n,)
        np.testing.assert_allclose(posterior.sum(), 1.0)
        assert (
            int(np.argmax(posterior)) == vehicle_hierarchy.index("Sentra")
        )

    def test_updater_kinds_agree(self, vehicle_hierarchy):
        n = vehicle_hierarchy.n
        rng = np.random.default_rng(3)
        posterior = rng.dirichlet(np.ones(n), size=6)
        queries = rng.integers(0, n, size=6)
        answers = rng.random(6) < 0.5
        rates = rng.uniform(0.0, 0.45, size=n)
        results = {}
        for splitter in SPLITTER_KINDS:
            update = make_belief_updater(vehicle_hierarchy, kind=splitter)
            assert update.kind == splitter
            results[splitter] = update(posterior, queries, answers, rates)
        reference = results.pop("tree")
        for splitter, updated in results.items():
            np.testing.assert_array_equal(
                reference, updated, err_msg=f"kind={splitter} diverged"
            )

    def test_updater_rejects_unknown_kind(self, vehicle_hierarchy):
        with pytest.raises(HierarchyError):
            make_belief_updater(vehicle_hierarchy, kind="quantum")


class TestMapStopping:
    def test_noiseless_map_is_perfect(self, vehicle_hierarchy,
                                      vehicle_distribution):
        result = simulate_noisy(
            _policy_for("tree"),
            vehicle_hierarchy,
            vehicle_distribution,
            error_model=ErrorRateModel(0.0),
            replications=2,
            map_threshold=0.95,
            track_posterior=True,
        )
        assert result.accuracy() == 1.0
        assert result.posterior is not None

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=10, max_value=28),
    )
    def test_map_stops_never_increase_spend(self, seed, n):
        """Early MAP stops can only shorten sessions, never lengthen them."""
        hierarchy = make_random_tree(n, seed=seed)
        distribution = random_distribution(hierarchy, seed)
        common = dict(
            error_model=ErrorRateModel(0.1), replications=2, seed=seed
        )
        plain = simulate_noisy(
            _policy_for("tree"), hierarchy, distribution, **common
        )
        mapped = simulate_noisy(
            _policy_for("tree"),
            hierarchy,
            distribution,
            map_threshold=0.9,
            **common,
        )
        assert (mapped.queries <= plain.queries).all()
        stopped = mapped.run_outcomes == OUTCOME_MAP
        # A MAP stop always yields a label (the argmax), never a failure.
        assert (mapped.run_labels[stopped] >= 0).all()


class TestValidation:
    def test_bad_knobs(self, vehicle_hierarchy, vehicle_distribution):
        policy = _policy_for("tree")
        with pytest.raises(SearchError):
            simulate_noisy(
                policy, vehicle_hierarchy, vehicle_distribution,
                error_model=0.1, replications=0,
            )
        with pytest.raises(OracleError):
            simulate_noisy(
                policy, vehicle_hierarchy, vehicle_distribution,
                error_model=0.1, votes=4,
            )
        with pytest.raises(OracleError):
            simulate_noisy(
                policy, vehicle_hierarchy, vehicle_distribution,
                error_model=0.6,
            )

    def test_bare_float_error_model(self, vehicle_hierarchy,
                                    vehicle_distribution):
        """A bare rate is promoted to a transient ErrorRateModel."""
        a = simulate_noisy(
            _policy_for("tree"), vehicle_hierarchy, vehicle_distribution,
            error_model=0.2, replications=2, seed=5,
        )
        b = simulate_noisy(
            _policy_for("tree"), vehicle_hierarchy, vehicle_distribution,
            error_model=ErrorRateModel(0.2), replications=2, seed=5,
        )
        _assert_same(a, b, "bare-float promotion diverged")
