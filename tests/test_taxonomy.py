"""Unit tests for the taxonomy substrate (generators, catalogs, parsers, io)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.taxonomy import (
    Catalog,
    TaxonomyStats,
    amazon_catalog,
    amazon_like,
    balanced_tree,
    imagenet_like,
    load_catalog,
    load_edge_list,
    load_hierarchy,
    parse_category_paths,
    parse_structure_xml,
    path_graph,
    random_dag,
    random_tree,
    save_catalog,
    save_edge_list,
    save_hierarchy,
    star_graph,
)
from repro.taxonomy._sampling import FenwickSampler


class TestFenwickSampler:
    def test_follows_weights(self, rng):
        sampler = FenwickSampler(3)
        sampler.set_weight(0, 1.0)
        sampler.set_weight(1, 3.0)
        sampler.set_weight(2, 0.0)
        draws = Counter(sampler.sample(rng) for _ in range(4000))
        assert draws[2] == 0
        assert 0.2 < draws[0] / 4000 < 0.3

    def test_dynamic_updates(self, rng):
        sampler = FenwickSampler(2)
        sampler.set_weight(0, 1.0)
        assert sampler.sample(rng) == 0
        sampler.set_weight(0, 0.0)
        sampler.set_weight(1, 1.0)
        assert sampler.sample(rng) == 1
        assert sampler.total == 1.0

    def test_validation(self, rng):
        with pytest.raises(ReproError):
            FenwickSampler(0)
        sampler = FenwickSampler(2)
        with pytest.raises(ReproError):
            sampler.set_weight(5, 1.0)
        with pytest.raises(ReproError):
            sampler.set_weight(0, -1.0)
        with pytest.raises(ReproError):
            sampler.sample(rng)  # all-zero


class TestGenerators:
    @pytest.mark.parametrize("n", [1, 2, 50, 300])
    def test_random_tree_shape(self, n):
        h = random_tree(n, np.random.default_rng(5), max_depth=6)
        assert h.n == n
        assert h.is_tree
        assert h.height <= 6

    def test_random_tree_deterministic_per_seed(self):
        a = random_tree(40, np.random.default_rng(3))
        b = random_tree(40, np.random.default_rng(3))
        assert a.edges() == b.edges()

    def test_random_dag_has_multi_parents(self):
        h = random_dag(120, np.random.default_rng(5), extra_edge_fraction=0.2)
        assert not h.is_tree
        assert any(h.in_degree(v) > 1 for v in h.nodes)
        assert h.m > h.n - 1

    def test_fixed_shapes(self):
        assert balanced_tree(2, 3).n == 15
        assert path_graph(5).height == 4
        assert star_graph(7).max_out_degree == 6

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            random_tree(0, np.random.default_rng(0))
        with pytest.raises(ReproError):
            path_graph(0)

    def test_amazon_like_matches_table2_shape(self):
        h = amazon_like(1500, seed=7)
        assert h.is_tree
        assert h.n == 1500
        assert 6 <= h.height <= 10
        assert h.max_out_degree >= 15  # hub-heavy branching

    def test_imagenet_like_matches_table2_shape(self):
        h = imagenet_like(1200, seed=11)
        assert not h.is_tree
        assert h.n == 1200
        assert h.height <= 16


class TestCatalog:
    def test_counts_and_total(self, vehicle_hierarchy):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 40, "Sentra": 40, "Car": 0})
        assert catalog.num_objects == 80
        assert "Car" not in catalog.counts  # zero counts dropped

    def test_rejects_unknown_category(self, vehicle_hierarchy):
        with pytest.raises(ReproError, match="not in hierarchy"):
            Catalog(vehicle_hierarchy, {"Tesla": 5})

    def test_rejects_negative_and_empty(self, vehicle_hierarchy):
        with pytest.raises(ReproError, match="negative"):
            Catalog(vehicle_hierarchy, {"Car": -1})
        with pytest.raises(ReproError, match="no objects"):
            Catalog(vehicle_hierarchy, {"Car": 0})

    def test_to_distribution(self, vehicle_hierarchy):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 3, "Sentra": 1})
        dist = catalog.to_distribution()
        assert dist.p("Maxima") == pytest.approx(0.75)

    def test_stream_is_a_permutation_of_the_corpus(self, vehicle_hierarchy, rng):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 5, "Sentra": 3})
        stream = catalog.stream(rng)
        assert Counter(stream) == {"Maxima": 5, "Sentra": 3}

    def test_stream_truncation(self, vehicle_hierarchy, rng):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 50, "Sentra": 50})
        assert len(catalog.stream(rng, max_objects=10)) == 10

    def test_synthetic_totals(self, rng):
        h = random_tree(80, rng)
        catalog = Catalog.synthetic(h, rng, num_objects=5000)
        assert catalog.num_objects == 5000

    def test_synthetic_leaf_bias(self, rng):
        h = amazon_like(300, seed=1)
        catalog = amazon_catalog(h, num_objects=30_000)
        leaves = set(h.leaves())
        leaf_mass = sum(c for n, c in catalog.counts.items() if n in leaves)
        assert leaf_mass > catalog.num_objects * 0.5

    def test_synthetic_validation(self, rng):
        h = random_tree(10, rng)
        with pytest.raises(ReproError):
            Catalog.synthetic(h, rng, num_objects=0)
        with pytest.raises(ReproError):
            Catalog.synthetic(h, rng, coverage=0.0)


class TestParsers:
    def test_category_paths_union(self):
        h = parse_category_paths(
            [
                "Electronics/Camera/DSLR",
                "Electronics/Camera/Mirrorless",
                ["Books", "Fiction"],
            ]
        )
        assert h.root == "amazon"
        assert h.is_tree
        # Namespaced labels keep same-named categories distinct.
        assert "Electronics/Camera" in h
        assert h.depth("Electronics/Camera/DSLR") == 3

    def test_category_paths_duplicate_names_distinct(self):
        h = parse_category_paths(["A/Accessories", "B/Accessories"])
        assert "A/Accessories" in h and "B/Accessories" in h

    def test_category_paths_empty(self):
        with pytest.raises(ReproError, match="no category paths"):
            parse_category_paths([])

    def test_structure_xml(self):
        xml = """
        <ImageNetStructure>
          <releaseData>fall2011</releaseData>
          <synset wnid="root">
            <synset wnid="animal">
              <synset wnid="dog"/>
              <synset wnid="pet"><synset wnid="dog"/></synset>
            </synset>
            <synset wnid="fa11misc">
              <synset wnid="junk"/>
            </synset>
          </synset>
        </ImageNetStructure>
        """
        h = parse_structure_xml(xml)
        assert h.root == "ImageNet"
        assert not h.is_tree  # "dog" has two parents
        assert set(h.parents("dog")) == {"animal", "pet"}
        assert "fa11misc" not in h
        assert "junk" not in h

    def test_structure_xml_invalid(self):
        with pytest.raises(ReproError, match="invalid structure XML"):
            parse_structure_xml("<unclosed>")
        with pytest.raises(ReproError, match="no synsets"):
            parse_structure_xml("<root><foo/></root>")


class TestIO:
    def test_hierarchy_json_round_trip(self, tmp_path, vehicle_hierarchy):
        path = tmp_path / "h.json"
        save_hierarchy(vehicle_hierarchy, path)
        back = load_hierarchy(path)
        assert set(back.edges()) == set(vehicle_hierarchy.edges())

    def test_edge_list_round_trip(self, tmp_path, vehicle_hierarchy):
        path = tmp_path / "h.tsv"
        save_edge_list(vehicle_hierarchy, path)
        back = load_edge_list(path)
        assert set(back.edges()) == set(vehicle_hierarchy.edges())

    def test_edge_list_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a b c\n")
        with pytest.raises(ReproError, match="expected"):
            load_edge_list(path)

    def test_distribution_round_trip(self, tmp_path, vehicle_distribution):
        from repro.taxonomy import load_distribution, save_distribution

        path = tmp_path / "d.json"
        save_distribution(vehicle_distribution, path)
        back = load_distribution(path)
        for node, p in vehicle_distribution.items():
            assert back.p(node) == pytest.approx(p)

    def test_distribution_malformed(self, tmp_path):
        from repro.taxonomy import load_distribution

        path = tmp_path / "bad.json"
        path.write_text('{"version": 1}')
        with pytest.raises(ReproError, match="malformed distribution"):
            load_distribution(path)

    def test_catalog_round_trip(self, tmp_path, vehicle_hierarchy):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 4, "Car": 2})
        path = tmp_path / "c.json"
        save_catalog(catalog, path)
        back = load_catalog(vehicle_hierarchy, path)
        assert back.counts == catalog.counts


class TestStats:
    def test_table2_row(self, vehicle_hierarchy):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 40, "Sentra": 40})
        stats = TaxonomyStats.of("Vehicles", vehicle_hierarchy, catalog)
        row = stats.as_row()
        assert row["#nodes"] == 7
        assert row["Type"] == "Tree"
        assert row["#objects"] == 80
