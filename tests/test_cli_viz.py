"""Unit tests for the CLI, reporting helpers, and ASCII visualisation."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.decision_tree import build_decision_tree
from repro.experiments.reporting import Series, Table
from repro.policies import GreedyTreePolicy, make_policy, available_policies, greedy_for
from repro.exceptions import PolicyError
from repro.viz import render_decision_tree, render_hierarchy


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table3", "--scale", "tiny", "--seed", "3"])
        assert args.experiment == "table3"
        assert args.scale == "tiny"
        assert args.seed == 3

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_main_runs_example2(self, capsys):
        assert main(["example2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "2.04" in out
        assert "finished" in out


class TestRegistry:
    def test_available(self):
        names = available_policies()
        assert "greedy-tree" in names and "wigs" in names

    def test_make_policy(self):
        policy = make_policy("greedy-tree", rounded=True)
        assert policy.rounded

    def test_unknown_name(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            make_policy("bogus")

    def test_greedy_for_shape(self, vehicle_hierarchy, diamond_dag):
        assert greedy_for(vehicle_hierarchy).name == "GreedyTree"
        assert greedy_for(diamond_dag).name == "GreedyDAG"


class TestReporting:
    def test_table_render_and_markdown(self):
        table = Table("Demo", ("A", "B"))
        table.add_row({"A": 1.234, "B": "x"})
        text = table.render()
        assert "Demo" in text and "1.23" in text
        md = table.to_markdown()
        assert md.startswith("| A | B |")
        assert table.column("B") == ["x"]

    def test_series_render(self):
        series = Series("Curve", "x", [1, 2])
        series.add_line("y", [10.0, 20.0])
        text = series.render()
        assert "Curve" in text and "20.00" in text


class TestViz:
    def test_render_hierarchy(self, vehicle_hierarchy, vehicle_distribution):
        text = render_hierarchy(
            vehicle_hierarchy, distribution=vehicle_distribution
        )
        assert text.splitlines()[0].startswith("Vehicle")
        assert "Sentra" in text
        assert "40.00%" in text

    def test_render_hierarchy_truncates(self, vehicle_hierarchy):
        text = render_hierarchy(vehicle_hierarchy, max_nodes=3)
        assert "truncated" in text

    def test_render_decision_tree(self, vehicle_hierarchy, vehicle_distribution):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        text = render_decision_tree(tree)
        assert "reach(Maxima)?" in text
        assert "=> " in text

    def test_render_decision_tree_truncates(self, vehicle_hierarchy):
        from repro.policies import TopDownPolicy

        tree = build_decision_tree(TopDownPolicy, vehicle_hierarchy)
        text = render_decision_tree(tree, max_depth=1)
        assert "truncated" in text
