"""Smoke tests at larger scales (fast paths that must not regress)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distribution import TargetDistribution
from repro.core.session import search_for_target
from repro.policies import GreedyDagPolicy, GreedyTreePolicy, WigsPolicy
from repro.taxonomy import amazon_catalog, amazon_like, imagenet_like

from repro.testing import make_random_dag


class TestBlockedReachWeights:
    @pytest.mark.parametrize("block", [16, 128, 4096])
    def test_matches_dense_matrix(self, block):
        h = make_random_dag(200, seed=6)
        weights = np.random.default_rng(1).uniform(0.0, 2.0, h.n)
        dense = h.reachability_matrix() @ weights
        blocked = h._reach_weights_blocked(weights, block=block)
        assert np.allclose(dense, blocked)


class TestMediumScale:
    """A few thousand nodes: the efficient policies must stay fast."""

    def test_greedy_tree_5k(self):
        h = amazon_like(5_000, seed=7)
        dist = amazon_catalog(h, num_objects=100_000).to_distribution()
        policy = GreedyTreePolicy()
        rng = np.random.default_rng(2)
        for target in dist.sample(rng, size=25):
            result = search_for_target(policy, h, target, dist)
            assert result.returned == target
            assert result.num_queries < 200

    def test_greedy_dag_3k(self):
        h = imagenet_like(3_000, seed=11)
        dist = TargetDistribution.equal(h)
        policy = GreedyDagPolicy()
        rng = np.random.default_rng(3)
        nodes = list(h.nodes)
        for pick in rng.integers(0, h.n, size=10):
            target = nodes[int(pick)]
            result = search_for_target(policy, h, target, dist)
            assert result.returned == target

    def test_wigs_5k_worst_case_logarithmic(self):
        h = amazon_like(5_000, seed=7)
        policy = WigsPolicy()
        rng = np.random.default_rng(4)
        nodes = list(h.nodes)
        worst = 0
        for pick in rng.integers(0, h.n, size=25):
            result = search_for_target(policy, h, nodes[int(pick)])
            worst = max(worst, result.num_queries)
        assert worst < 70  # ~ a few heavy-path segments of log2(5000) each


class TestPaperScaleConstruction:
    """Table II-size hierarchies must construct quickly."""

    def test_amazon_paper_size(self):
        h = amazon_like(29_240, seed=7)
        assert h.n == 29_240
        assert h.is_tree
        assert h.height == 10
        assert h.max_out_degree > 60

    def test_imagenet_paper_size(self):
        h = imagenet_like(27_714, seed=11)
        assert h.n == 27_714
        assert not h.is_tree
        assert h.m > h.n - 1
