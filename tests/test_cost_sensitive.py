"""Unit tests for cost-sensitive greedy (Section III-D, Example 4)."""

from __future__ import annotations

import pytest

from repro.core.costs import TableCost, UnitCost, random_costs
from repro.core.decision_tree import build_decision_tree
from repro.core.distribution import TargetDistribution
from repro.core.hierarchy import Hierarchy
from repro.core.session import search_for_target
from repro.policies import CostSensitiveGreedyPolicy, GreedyNaivePolicy
from repro.policies.optimal import optimal_expected_cost

from repro.testing import make_random_tree, random_distribution


@pytest.fixture
def chain4() -> Hierarchy:
    """Fig. 3(a): the 4-node chain 1 -> 2 -> 3 -> 4."""
    return Hierarchy([(1, 2), (2, 3), (3, 4)])


@pytest.fixture
def chain4_costs() -> TableCost:
    """c(1) = c(2) = c(4) = 1, c(3) = 5."""
    return TableCost({1: 1.0, 2: 1.0, 3: 5.0, 4: 1.0})


class TestExample4:
    """The paper's Example 4, reproduced with exact arithmetic."""

    def test_simple_greedy_pays_6(self, chain4, chain4_costs):
        dist = TargetDistribution.equal(chain4)
        tree = build_decision_tree(
            GreedyNaivePolicy, chain4, dist, chain4_costs
        )
        assert tree.expected_price(dist, chain4_costs) == pytest.approx(6.0)

    def test_cost_sensitive_greedy_pays_4_25(self, chain4, chain4_costs):
        dist = TargetDistribution.equal(chain4)

        def factory():
            return CostSensitiveGreedyPolicy()

        tree = build_decision_tree(factory, chain4, dist, chain4_costs)
        assert tree.expected_price(dist, chain4_costs) == pytest.approx(4.25)

    def test_first_queries(self, chain4, chain4_costs):
        dist = TargetDistribution.equal(chain4)
        simple = GreedyNaivePolicy()
        simple.reset(chain4, dist, chain4_costs)
        assert simple.propose() == 3  # splits 2-2, ignoring prices

        sensitive = CostSensitiveGreedyPolicy()
        sensitive.reset(chain4, dist, chain4_costs)
        # Nodes 2 and 4 tie at 0.1875, both beating node 3's 0.05; the paper
        # picks 4, and ties may break either way (Definition 4 remark).
        first = sensitive.propose()
        assert first in (2, 4)
        assert sensitive.objective_of(first) == pytest.approx(0.1875)

    def test_objective_values_match_paper(self, chain4, chain4_costs):
        dist = TargetDistribution.equal(chain4)
        policy = CostSensitiveGreedyPolicy()
        policy.reset(chain4, dist, chain4_costs)
        assert policy.objective_of(4) == pytest.approx(0.25 * 0.75 / 1.0)
        assert policy.objective_of(3) == pytest.approx(0.5 * 0.5 / 5.0)


class TestGeneral:
    def test_unit_costs_reduce_to_plain_greedy_objective(self, chain4):
        """With unit prices the maximiser of p(Gu)p(G\\Gu) is a middle point."""
        dist = TargetDistribution.equal(chain4)
        sensitive = CostSensitiveGreedyPolicy()
        sensitive.reset(chain4, dist, UnitCost())
        plain = GreedyNaivePolicy()
        plain.reset(chain4, dist)
        assert plain.objective_of(sensitive.propose()) == pytest.approx(
            plain.objective_of(plain.propose())
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_soundness_random_costs(self, seed, rng):
        h = make_random_tree(15, seed=seed)
        dist = random_distribution(h, seed)
        costs = random_costs(h, rng)
        policy = CostSensitiveGreedyPolicy()
        for target in h.nodes:
            result = search_for_target(
                policy, h, target, dist, cost_model=costs
            )
            assert result.returned == target

    @pytest.mark.parametrize("seed", range(3))
    def test_not_much_worse_than_optimal_price(self, seed, rng):
        """Sanity versus the exponential CAIGS optimum on small trees."""
        h = make_random_tree(9, seed=seed)
        dist = random_distribution(h, seed)
        costs = random_costs(h, rng)

        def factory():
            return CostSensitiveGreedyPolicy()

        tree = build_decision_tree(factory, h, dist, costs)
        greedy_price = tree.expected_price(dist, costs)
        best = optimal_expected_cost(h, dist, costs)
        assert greedy_price <= 2.5 * best + 1e-9

    def test_rounded_variant_sound(self, chain4, chain4_costs):
        dist = TargetDistribution({1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4})
        policy = CostSensitiveGreedyPolicy(rounded=True)
        for target in chain4.nodes:
            result = search_for_target(
                policy, chain4, target, dist, cost_model=chain4_costs
            )
            assert result.returned == target

    def test_zero_mass_fallback(self, chain4, chain4_costs):
        dist = TargetDistribution({1: 1.0})
        policy = CostSensitiveGreedyPolicy()
        for target in chain4.nodes:
            result = search_for_target(
                policy, chain4, target, dist, cost_model=chain4_costs
            )
            assert result.returned == target
