"""Integration tests: every paper experiment runs and shows the right shape."""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXPERIMENTS,
    TINY,
    build_datasets,
    get_scale,
    scaled,
)
from repro.experiments import example2, fig4, fig5, fig6, table2, table3, table45
from repro.exceptions import ReproError


@pytest.fixture(scope="module")
def datasets():
    return build_datasets(TINY, seed=0)


class TestScales:
    def test_lookup(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale("paper").amazon_nodes == 29_240
        with pytest.raises(ReproError):
            get_scale("huge")

    def test_scaled_overrides(self):
        custom = scaled(TINY, trials=9)
        assert custom.trials == 9
        assert custom.amazon_nodes == TINY.amazon_nodes

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            scaled(TINY, amazon_nodes=2)


class TestDatasets:
    def test_pair_shapes(self, datasets):
        amazon, imagenet = datasets
        assert amazon.hierarchy.is_tree
        assert not imagenet.hierarchy.is_tree
        assert amazon.hierarchy.n == TINY.amazon_nodes
        assert amazon.catalog.num_objects == TINY.num_objects

    def test_memoised(self):
        assert build_datasets(TINY, 0)[0] is build_datasets(TINY, 0)[0]

    def test_real_distribution_cached(self, datasets):
        amazon, _ = datasets
        assert amazon.real_distribution is amazon.real_distribution


class TestTable2:
    def test_rows(self):
        table = table2.run(TINY, seed=0)
        assert len(table.rows) == 4  # two datasets + two paper rows
        assert table.rows[0]["Type"] == "Tree"
        assert "Table II" in table.render()


class TestTable3:
    def test_paper_ordering_holds(self):
        """Greedy < WIGS < TopDown, and MIGS comparable to TopDown."""
        table = table3.run(TINY, seed=0)
        for row in table.rows:
            assert row["Greedy"] < row["WIGS"]
            assert row["WIGS"] < row["TopDown"]
            assert 0.3 < row["MIGS"] / row["TopDown"] < 3.0


class TestTables45:
    def test_shapes(self):
        tables = table45.run(TINY, seed=0)
        assert len(tables) == 2
        for table in tables:
            families = [row["Distribution"] for row in table.rows]
            assert families == ["equal", "uniform", "exponential", "zipf"]
            by_family = {row["Distribution"]: row for row in table.rows}
            # Greedy always beats WIGS, and skew (zipf) helps it most.
            for row in table.rows:
                assert row["Greedy"] <= row["WIGS"] * 1.05
            assert by_family["zipf"]["Greedy"] < by_family["equal"]["Greedy"]
            # The oblivious baselines are flat across distributions.
            wigs = [row["WIGS"] for row in table.rows]
            assert max(wigs) - min(wigs) < 0.35 * max(wigs)

    def test_dataset_filter(self):
        tables = table45.run(TINY, seed=0, dataset_name="Amazon")
        assert len(tables) == 1
        assert "Amazon" in tables[0].title


class TestFig4:
    def test_converges_towards_offline(self):
        panels = fig4.run(TINY, seed=0)
        assert len(panels) == 2
        for panel in panels:
            online_name = next(
                name for name in panel.lines if "online" in name
            )
            online = panel.lines[online_name]
            offline = panel.lines["Given Real Dist."][0]
            wigs = panel.lines["WIGS"][0]
            assert offline < wigs
            # The last block sits close to the offline cost...
            assert online[-1] <= offline * 1.35
            # ...and the curve does not *end* above where it started.
            assert online[-1] <= online[0] * 1.15


class TestFig5:
    def test_cost_grows_with_a_and_caps_at_equal(self):
        panels = fig5.run(TINY, seed=0)
        for panel in panels:
            greedy_name = next(n for n in panel.lines if n != "Equal Pr.")
            costs = panel.lines[greedy_name]
            equal = panel.lines["Equal Pr."][0]
            assert costs[0] < costs[-1]  # more skew (small a) -> cheaper
            assert costs[-1] <= equal * 1.1  # approaches the equal cost


class TestFig6:
    def test_naive_is_slower(self):
        panels = fig6.run(scaled(TINY, fig6_nodes=60, fig6_per_depth=1), seed=0)
        for panel in panels:
            naive = sum(panel.lines["GreedyNaive"])
            fast_name = next(
                n for n in panel.lines if n.startswith("Greedy") and n != "GreedyNaive"
            )
            fast = sum(panel.lines[fast_name])
            assert naive > fast


class TestExample2:
    def test_numbers(self):
        table = example2.run()
        by_policy = {row["Policy"]: row for row in table.rows}
        assert by_policy["GreedyTree"]["Expected cost"] == pytest.approx(2.04)
        assert by_policy["WIGS"]["Expected cost"] == pytest.approx(2.60)
        assert by_policy["WIGS"]["Worst case"] == 4
        assert by_policy["GreedyTree"]["Worst case"] == 6


class TestRegistry:
    def test_all_experiments_run_at_tiny_scale(self, capsys):
        for name, entry in EXPERIMENTS.items():
            entry(scaled(TINY, fig6_nodes=40, fig6_per_depth=1,
                         online_objects=300, online_block=100,
                         online_traces=1, trials=1), 0)
            output = capsys.readouterr().out
            assert output.strip()
