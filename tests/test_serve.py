"""Tests for the unified session runtime and the streaming serving layer.

Three contracts:

1. **Runtime parity** — :class:`repro.serve.SessionRuntime` (and therefore
   the ``run_search`` / online / console adapters now built on it) produces
   byte-identical transcripts, counts, and prices to the pre-refactor
   inline loops, whose exact code is preserved here as references — for
   every registry policy, on trees and DAGs (hypothesis-driven seeds).

2. **Server semantics** — micro-batched serving is byte-identical to
   sequential ``run_search`` per session; admission control and per-tenant
   plan quotas reject with the documented exception types; oracle-driven
   and target-driven sessions mix.

3. **Streaming pool mode** — :meth:`EvaluationPool.stream` batches match
   ``simulate_all_targets`` on the same subsets, streams keep their plan
   resident, and the server's pool offload serves identical results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.costs import TableCost, UnitCost, random_costs
from repro.core.oracle import ExactOracle
from repro.core.session import SearchResult, run_search, start_session
from repro.engine import EvaluationPool, simulate_all_targets
from repro.exceptions import (
    AdmissionError,
    BudgetExceededError,
    PolicyError,
    PoolError,
    QuotaExceededError,
    SearchError,
    ServeError,
)
from repro.plan import compile_policy
from repro.policies import GreedyTreePolicy, available_policies, make_policy
from repro.serve import Server, SessionRequest, SessionRuntime
from repro.testing import (
    make_random_dag,
    make_random_tree,
    random_distribution,
)

TREE_ONLY = {"greedy-tree"}

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Reference implementations: the pre-refactor loops, verbatim
# ----------------------------------------------------------------------
def _legacy_run_search(
    policy,
    oracle,
    hierarchy=None,
    distribution=None,
    cost_model=None,
    *,
    max_queries=None,
    reset=True,
):
    """The inline Algorithm-1 loop ``run_search`` had before ``repro.serve``."""
    model = cost_model or UnitCost()
    executor, hierarchy = start_session(
        policy, hierarchy, distribution, model, reset=reset
    )
    budget = max_queries if max_queries is not None else 2 * hierarchy.n + 10
    transcript = []
    total_price = 0.0
    while not executor.done():
        if len(transcript) >= budget:
            raise BudgetExceededError("legacy budget")
        query = executor.propose()
        answer = bool(oracle.answer(query))
        total_price += model.cost(query)
        transcript.append((query, answer))
        executor.observe(answer)
    return SearchResult(
        returned=executor.result(),
        num_queries=len(transcript),
        total_price=total_price,
        transcript=tuple(transcript),
    )


def _legacy_online_costs(policy, hierarchy, stream, *, refresh_every=1):
    """The per-object serving loop the online simulator had (costs only)."""
    from repro.online.learner import EmpiricalLearner
    from repro.plan import LazyPlan

    learner = EmpiricalLearner(hierarchy, smoothing=1.0)
    plan = None
    costs = []
    try:
        for position, category in enumerate(stream):
            if plan is None or position % refresh_every == 0:
                plan = LazyPlan(policy, hierarchy, learner.snapshot())
            result = _legacy_run_search(
                plan, ExactOracle(hierarchy, category), hierarchy
            )
            learner.observe(category)
            costs.append(result.num_queries)
    finally:
        if policy.supports_undo:
            policy.enable_undo(False)
    return costs


def _hierarchy(kind, n, seed):
    if kind == "tree":
        return make_random_tree(n, seed=seed)
    return make_random_dag(n, seed=seed)


# ----------------------------------------------------------------------
# 1. Runtime parity with the pre-refactor loops
# ----------------------------------------------------------------------
class TestRuntimeParity:
    @settings(**_SETTINGS)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(8, 40),
        kind=st.sampled_from(["tree", "dag"]),
    )
    def test_every_policy_matches_legacy_loop(self, seed, n, kind):
        hierarchy = _hierarchy(kind, n, seed)
        distribution = random_distribution(hierarchy, seed)
        rng = np.random.default_rng(seed)
        targets = [
            hierarchy.nodes[int(i)]
            for i in rng.integers(0, hierarchy.n, size=5)
        ]
        for name in available_policies():
            if kind == "dag" and name in TREE_ONLY:
                continue
            for target in targets:
                oracle = ExactOracle(hierarchy, target)
                legacy = _legacy_run_search(
                    make_policy(name), oracle, hierarchy, distribution
                )
                current = run_search(
                    make_policy(name), oracle, hierarchy, distribution
                )
                runtime = SessionRuntime(
                    make_policy(name), hierarchy, distribution
                ).run(oracle)
                assert current == legacy, (name, target)
                assert runtime == legacy, (name, target)

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000))
    def test_plan_cursor_sessions_match_legacy(self, seed):
        hierarchy = make_random_tree(30, seed=seed)
        distribution = random_distribution(hierarchy, seed)
        costs = random_costs(hierarchy, np.random.default_rng(seed))
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution, costs)
        for target in list(hierarchy.nodes)[::5]:
            oracle = ExactOracle(hierarchy, target)
            assert run_search(plan, oracle, hierarchy, cost_model=costs) == (
                _legacy_run_search(plan, oracle, hierarchy, cost_model=costs)
            )

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(0, 10_000),
        refresh=st.sampled_from([1, 3]),
    )
    def test_online_path_matches_legacy(self, seed, refresh):
        from repro.online import simulate_online_labeling
        from repro.taxonomy import Catalog

        hierarchy = make_random_tree(25, seed=seed)
        rng = np.random.default_rng(seed)
        nodes = list(hierarchy.nodes)
        catalog = Catalog(hierarchy, {nodes[i]: 3 for i in range(0, 20, 2)})
        stream = catalog.stream(rng)
        legacy = _legacy_online_costs(
            GreedyTreePolicy(), hierarchy, stream, refresh_every=refresh
        )
        result = simulate_online_labeling(
            GreedyTreePolicy(),
            hierarchy,
            stream,
            block_size=len(stream),
            refresh_every=refresh,
        )
        assert result.block_costs[0] * len(stream) == pytest.approx(
            sum(legacy)
        )
        assert result.total_objects == len(legacy)


class TestRuntimeProtocol:
    def test_stepwise_driving_and_undo_refund(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        model = TableCost({}, default=2.0)
        session = SessionRuntime(plan, cost_model=model)
        first = session.propose()
        session.observe(True)
        assert session.num_queries == 1
        assert session.total_price == 2.0
        session.undo()
        assert session.num_queries == 0
        assert session.total_price == 0.0
        assert session.propose() == first  # back at the first question

    def test_undo_with_nothing_observed(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with pytest.raises(PolicyError, match="no answers"):
            SessionRuntime(plan).undo()

    def test_budget_raises_from_propose(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        session = SessionRuntime(plan, max_queries=1)
        session.observe(True)  # answer the pending first question
        if not session.done():
            with pytest.raises(BudgetExceededError, match="budget"):
                session.propose()

    def test_result_before_done_raises(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with pytest.raises(PolicyError):
            SessionRuntime(plan).result()


# ----------------------------------------------------------------------
# 2. Server semantics
# ----------------------------------------------------------------------
def _served(server, feed):
    return {o.session_id: o for o in server.serve(feed)}


class TestServerParity:
    @pytest.mark.parametrize("name", available_policies())
    def test_every_policy_tree(self, name):
        hierarchy = make_random_tree(40, seed=3)
        distribution = random_distribution(hierarchy, 3)
        plan = compile_policy(make_policy(name), hierarchy, distribution)
        self._assert_parity(plan, hierarchy)

    @pytest.mark.parametrize(
        "name", [n for n in available_policies() if n not in TREE_ONLY]
    )
    def test_every_policy_dag(self, name):
        hierarchy = make_random_dag(32, seed=4)
        distribution = random_distribution(hierarchy, 4)
        plan = compile_policy(make_policy(name), hierarchy, distribution)
        self._assert_parity(plan, hierarchy)

    @staticmethod
    def _assert_parity(plan, hierarchy, **server_kwargs):
        rng = np.random.default_rng(0)
        targets = [
            hierarchy.nodes[int(i)]
            for i in rng.integers(0, hierarchy.n, size=64)
        ]
        with Server(plan, max_sessions=16, **server_kwargs) as server:
            outcomes = _served(
                server,
                (SessionRequest(i, target=t) for i, t in enumerate(targets)),
            )
        assert len(outcomes) == len(targets)
        for i, target in enumerate(targets):
            reference = run_search(plan, ExactOracle(hierarchy, target), hierarchy)
            assert outcomes[i].ok
            assert outcomes[i].result == reference, (i, target)

    def test_heterogeneous_prices(self):
        hierarchy = make_random_tree(30, seed=7)
        distribution = random_distribution(hierarchy, 7)
        costs = random_costs(hierarchy, np.random.default_rng(7))
        plan = compile_policy(
            GreedyTreePolicy(), hierarchy, distribution, costs
        )
        rng = np.random.default_rng(1)
        targets = [
            hierarchy.nodes[int(i)] for i in rng.integers(0, hierarchy.n, 40)
        ]
        with Server(plan, cost_model=costs) as server:
            outcomes = _served(
                server,
                (SessionRequest(i, target=t) for i, t in enumerate(targets)),
            )
        for i, target in enumerate(targets):
            reference = run_search(
                plan, ExactOracle(hierarchy, target), hierarchy,
                cost_model=costs,
            )
            assert outcomes[i].result == reference

    def test_oracle_driven_sessions(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with Server(plan) as server:
            outcomes = _served(
                server,
                [
                    SessionRequest(
                        "o1", oracle=ExactOracle(vehicle_hierarchy, "Sentra")
                    ),
                    SessionRequest("t1", target="Maxima"),
                ],
            )
        assert outcomes["o1"].result.returned == "Sentra"
        assert outcomes["t1"].result.returned == "Maxima"
        reference = run_search(
            plan, ExactOracle(vehicle_hierarchy, "Sentra"), vehicle_hierarchy
        )
        assert outcomes["o1"].result == reference

    def test_transcripts_off(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with Server(plan, record_transcripts=False) as server:
            outcomes = _served(
                server, [SessionRequest(0, target="Honda")]
            )
        result = outcomes[0].result
        assert result.transcript == ()
        assert result.returned == "Honda"
        assert result.num_queries == run_search(
            plan, ExactOracle(vehicle_hierarchy, "Honda"), vehicle_hierarchy
        ).num_queries

    def test_failing_oracle_is_an_outcome_not_a_crash(self, vehicle_hierarchy):
        """A session whose answer source dies mid-search becomes an error
        outcome; the server (and its other sessions) keep going."""

        class ExplodingOracle:
            def answer(self, query):
                raise SearchError("crowd worker went home")

        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with Server(plan) as server:
            outcomes = _served(
                server,
                [
                    SessionRequest("bad", oracle=ExplodingOracle()),
                    SessionRequest("good", target="Maxima"),
                ],
            )
        assert isinstance(outcomes["bad"].error, SearchError)
        assert outcomes["good"].ok
        assert outcomes["good"].result.returned == "Maxima"

    def test_budget_outcome(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with Server(plan, max_queries=1) as server:
            outcomes = _served(
                server,
                [SessionRequest(i, target="Sentra") for i in range(3)],
            )
        for outcome in outcomes.values():
            assert isinstance(outcome.error, BudgetExceededError)


class TestAdmissionControl:
    def _plan(self, n=60, seed=5):
        hierarchy = make_random_tree(n, seed=seed)
        return compile_policy(
            GreedyTreePolicy(), hierarchy, random_distribution(hierarchy, seed)
        ), hierarchy

    def test_in_flight_cap_respected(self):
        plan, hierarchy = self._plan()
        feed = [
            SessionRequest(i, target=hierarchy.nodes[i % hierarchy.n])
            for i in range(50)
        ]
        with Server(plan, max_sessions=7) as server:
            outcomes = _served(server, iter(feed))
        assert len(outcomes) == 50
        assert server.stats.peak_in_flight <= 7

    def test_submit_rejects_when_full(self):
        plan, hierarchy = self._plan()
        with Server(plan, max_sessions=2, queue_limit=3) as server:
            for i in range(5):  # 2 in flight + 3 queued
                server.submit(SessionRequest(i, target=hierarchy.root))
            assert server.in_flight == 2
            assert server.queued == 3
            with pytest.raises(AdmissionError, match="capacity"):
                server.submit(SessionRequest(99, target=hierarchy.root))
            assert server.stats.rejected == 1
            # The admitted sessions still finish.
            outcomes = server.drain()
            assert len(outcomes) == 5

    def test_queue_overflow_is_admission_not_quota(self):
        plan, hierarchy = self._plan()
        with Server(plan, max_sessions=1, queue_limit=0) as server:
            server.submit(SessionRequest(0, target=hierarchy.root))
            with pytest.raises(AdmissionError) as excinfo:
                server.submit(SessionRequest(1, target=hierarchy.root))
            assert not isinstance(excinfo.value, QuotaExceededError)

    def test_closed_server_raises(self):
        plan, hierarchy = self._plan()
        server = Server(plan)
        server.close()
        with pytest.raises(ServeError, match="closed"):
            server.submit(SessionRequest(0, target=hierarchy.root))
        with pytest.raises(ServeError, match="closed"):
            list(server.serve([]))

    def test_bad_request_is_rejected_not_fatal(self):
        """One malformed request (unknown target) must become a rejected
        outcome; the admitted sessions still finish."""
        plan, hierarchy = self._plan()
        feed = [
            SessionRequest(0, target=hierarchy.root),
            SessionRequest(1, target="no-such-category"),
            SessionRequest(2, target=hierarchy.nodes[3]),
            SessionRequest(3),  # neither target nor oracle
        ]
        with Server(plan) as server:
            outcomes = _served(server, iter(feed))
        assert len(outcomes) == 4
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok  # unknown label
        assert isinstance(outcomes[3].error, ServeError)
        assert server.stats.errored == 2

    def test_request_must_pick_target_or_oracle(self, vehicle_hierarchy):
        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        with Server(plan) as server:
            with pytest.raises(ServeError, match="exactly one"):
                server.submit(SessionRequest(0))
            with pytest.raises(ServeError, match="exactly one"):
                server.submit(
                    SessionRequest(
                        1,
                        target="Car",
                        oracle=ExactOracle(vehicle_hierarchy, "Car"),
                    )
                )


class TestTenantQuotas:
    def _plans(self):
        h1 = make_random_tree(20, seed=1)
        h2 = make_random_tree(22, seed=2)
        return (
            compile_policy(GreedyTreePolicy(), h1, random_distribution(h1, 1)),
            compile_policy(GreedyTreePolicy(), h2, random_distribution(h2, 2)),
            h1,
            h2,
        )

    def test_quota_limits_distinct_plans_per_tenant(self):
        plan1, plan2, h1, h2 = self._plans()
        with Server(plan_quota=1) as server:
            server.register_plan(plan1, tenant="acme")
            server.register_plan(plan1, tenant="acme")  # idempotent
            with pytest.raises(QuotaExceededError, match="acme"):
                server.register_plan(plan2, tenant="acme")
            # Another tenant has its own budget.
            server.register_plan(plan2, tenant="globex")

    def test_quota_rejection_is_an_outcome_in_serve(self):
        plan1, plan2, h1, h2 = self._plans()
        feed = [
            SessionRequest(0, target=h1.root, plan=plan1, tenant="acme"),
            SessionRequest(1, target=h2.root, plan=plan2, tenant="acme"),
        ]
        with Server(plan_quota=1) as server:
            outcomes = _served(server, iter(feed))
        assert outcomes[0].ok
        assert isinstance(outcomes[1].error, QuotaExceededError)
        assert server.stats.rejected == 1

    def test_release_frees_quota(self):
        plan1, plan2, h1, h2 = self._plans()
        with Server(plan_quota=1) as server:
            server.register_plan(plan1, tenant="acme")
            server.release_plan(plan1, tenant="acme")
            server.register_plan(plan2, tenant="acme")  # fits again

    def test_release_refuses_while_sessions_in_flight(self):
        plan1, _, h1, _ = self._plans()
        with Server(plan1, max_sessions=4) as server:
            server.submit(SessionRequest(0, target=h1.root))
            with pytest.raises(ServeError, match="in flight"):
                server.release_plan(plan1)
            server.drain()
            server.release_plan(plan1)

    def test_pool_backed_quota_pins_segments(self):
        plan1, plan2, h1, h2 = self._plans()
        with EvaluationPool(workers=1) as pool:
            with Server(pool=pool, plan_quota=2) as server:
                server.register_plan(plan1, tenant="acme")
                assert plan1.config_key in pool.published_keys
                # Pinned: publishing more plans cannot evict it.
                server.register_plan(plan2, tenant="acme")
                assert plan1.config_key in pool.published_keys
                server.release_plan(plan1, tenant="acme")
            # Server close released the remaining pins; pool can evict.
            assert not pool.closed


class TestServerAsync:
    def test_aserve_matches_serve(self, vehicle_hierarchy):
        import asyncio

        plan = compile_policy(GreedyTreePolicy(), vehicle_hierarchy)
        targets = ["Sentra", "Car", "Maxima", "Honda", "Vehicle"]

        async def feed():
            for i, t in enumerate(targets):
                yield SessionRequest(i, target=t)

        async def main():
            out = {}
            with Server(plan, max_sessions=2) as server:
                async for outcome in server.aserve(feed()):
                    out[outcome.session_id] = outcome
            return out

        outcomes = asyncio.run(main())
        assert len(outcomes) == len(targets)
        for i, target in enumerate(targets):
            reference = run_search(
                plan, ExactOracle(vehicle_hierarchy, target), vehicle_hierarchy
            )
            assert outcomes[i].result == reference


# ----------------------------------------------------------------------
# 3. Streaming pool mode
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pool():
    with EvaluationPool(workers=2, max_plans=4) as pool:
        yield pool


class TestPlanStream:
    def _config(self, n=50, seed=9):
        hierarchy = make_random_tree(n, seed=seed)
        distribution = random_distribution(hierarchy, seed)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        return plan, hierarchy, distribution

    def test_batches_match_simulate_all_targets(self, pool):
        plan, hierarchy, distribution = self._config()
        rng = np.random.default_rng(0)
        batches = [
            [hierarchy.nodes[int(i)] for i in rng.integers(0, hierarchy.n, 8)]
            for _ in range(4)
        ]
        with pool.stream(plan) as stream:
            tickets = [stream.submit(batch) for batch in batches]
            done = {b.ticket: b for b in stream.join()}
        assert set(done) == set(tickets)
        for ticket, batch in zip(tickets, batches):
            reference = simulate_all_targets(
                plan, hierarchy, targets=batch, pool=False, result_cache=False
            )
            got = done[ticket]
            assert np.array_equal(got.target_ix, reference.target_ix)
            assert np.array_equal(
                got.queries, reference.queries[reference.target_ix]
            )
            assert np.allclose(
                got.prices, reference.prices[reference.target_ix]
            )

    def test_submit_accepts_index_arrays(self, pool):
        plan, hierarchy, _ = self._config()
        with pool.stream(plan) as stream:
            stream.submit(np.array([0, 3, 5], dtype=np.int64))
            (batch,) = stream.join()
        assert list(batch.target_ix) == [0, 3, 5]

    def test_stream_keeps_plan_resident(self, pool):
        plan, hierarchy, _ = self._config()
        with pool.stream(plan) as stream:
            assert plan.config_key in pool.published_keys
            stream.submit([hierarchy.root])
            stream.join()
            assert plan.config_key in pool.published_keys

    def test_poll_never_blocks_and_join_drains(self, pool):
        plan, hierarchy, _ = self._config()
        with pool.stream(plan) as stream:
            assert stream.poll() == []  # nothing submitted: empty, instant
            stream.submit([hierarchy.root])
            results = stream.join()
            assert len(results) == 1
            assert stream.pending == 0

    def test_closed_stream_rejects_submission(self, pool):
        plan, hierarchy, _ = self._config()
        stream = pool.stream(plan)
        stream.close()
        with pytest.raises(PoolError, match="closed"):
            stream.submit([hierarchy.root])
        stream.close()  # idempotent

    def test_stream_composes_with_run_batch(self, pool):
        """A synchronous walk between stream submissions must not eat the
        stream's results (routing by task id)."""
        plan, hierarchy, distribution = self._config(n=40, seed=11)
        with pool.stream(plan) as stream:
            ticket = stream.submit(list(hierarchy.nodes)[:10])
            # A full walk on the same pool while the batch is in flight.
            engine = simulate_all_targets(
                plan, hierarchy, pool=pool, result_cache=False
            )
            assert engine.num_targets == hierarchy.n
            done = stream.join()
        assert [b.ticket for b in done] == [ticket]

    def test_empty_batch_rejected(self, pool):
        plan, hierarchy, _ = self._config()
        with pool.stream(plan) as stream:
            with pytest.raises(PoolError, match="at least one"):
                stream.submit([])

    def test_worker_death_mid_stream_recovers(self):
        """SIGKILL while a batch is in flight: join restarts the pool,
        resubmits the outstanding batches, and the numbers still match."""
        import os
        import signal
        import time

        plan, hierarchy, _ = self._config(n=45, seed=15)
        targets = list(hierarchy.nodes)[:12]
        reference = simulate_all_targets(
            plan, hierarchy, targets=targets, pool=False, result_cache=False
        )
        with EvaluationPool(workers=1) as mortal:
            with mortal.stream(plan) as stream:
                stream.submit(targets)
                stream.join()  # warm: worker attached, first batch done
                mortal._inject_sleep(60.0)  # the lone worker is now busy
                ticket = stream.submit(targets)
                time.sleep(0.3)
                os.kill(mortal._procs[0].pid, signal.SIGKILL)
                (batch,) = stream.join()
                assert batch.ticket == ticket
                assert mortal.respawns >= 1
        assert np.array_equal(
            batch.queries, reference.queries[reference.target_ix]
        )

    def test_failed_batch_surfaces_as_typed_outcomes(self, pool):
        """A worker-side session failure (budget) must become per-session
        error outcomes, not an exception out of the serve generator — the
        same contract the local stepping path honors."""
        plan, hierarchy, _ = self._config(n=50, seed=19)
        deep = [t for t in hierarchy.nodes if hierarchy.depth(t) >= 2][:6]
        with Server(plan, pool=pool, max_queries=1) as server:
            outcomes = _served(
                server,
                (SessionRequest(i, target=t) for i, t in enumerate(deep)),
            )
        assert len(outcomes) == len(deep)
        for outcome in outcomes.values():
            assert isinstance(outcome.error, BudgetExceededError)
        # The server survives: a good feed still serves afterwards.
        with Server(plan, pool=pool) as server:
            good = _served(server, [SessionRequest("ok", target=deep[0])])
        assert good["ok"].ok

    def test_failed_batch_blames_only_the_offender(self, pool):
        """One over-budget session inside a pool batch must not fail its
        co-batched sessions: the batch falls back to local stepping, which
        errors exactly the offenders and completes the rest — matching a
        server without a pool session for session."""
        plan, hierarchy, _ = self._config(n=60, seed=23)
        depths = plan.leaf_depths()
        budget = (min(depths.values()) + max(depths.values()) + 1) // 2
        reference = {}
        for t in hierarchy.nodes:
            try:
                reference[t] = run_search(
                    plan, ExactOracle(hierarchy, t), hierarchy,
                    max_queries=budget,
                )
            except BudgetExceededError:
                reference[t] = None
        cheap = [t for t, r in reference.items() if r is not None][:8]
        costly = [t for t, r in reference.items() if r is None][:2]
        assert cheap and costly, (depths, budget)
        feed = [
            SessionRequest(t, target=t) for t in cheap + costly
        ]
        with Server(plan, pool=pool, max_queries=budget) as server:
            outcomes = _served(server, iter(feed))
        for t in cheap:
            assert outcomes[t].ok, t
            assert outcomes[t].result == reference[t]
        for t in costly:
            assert isinstance(outcomes[t].error, BudgetExceededError)

    def test_stream_poll_reports_errors_without_raising(self, pool):
        plan, hierarchy, _ = self._config(n=50, seed=20)
        deep = [t for t in hierarchy.nodes if hierarchy.depth(t) >= 2][:4]
        with pool.stream(plan, max_queries=1) as stream:
            stream.submit(deep)
            (batch,) = stream.join(raise_errors=False)
        assert not batch.ok
        assert isinstance(batch.error, BudgetExceededError)
        # ...and the default contract still raises.
        with pool.stream(plan, max_queries=1) as stream:
            stream.submit(deep)
            with pytest.raises(BudgetExceededError):
                stream.join()

    def test_server_pool_offload_parity(self, pool):
        plan, hierarchy, distribution = self._config(n=60, seed=13)
        rng = np.random.default_rng(3)
        targets = [
            hierarchy.nodes[int(i)] for i in rng.integers(0, hierarchy.n, 48)
        ]
        with Server(plan, pool=pool, max_sessions=16) as server:
            outcomes = _served(
                server,
                (SessionRequest(i, target=t) for i, t in enumerate(targets)),
            )
        assert server.stats.offloaded == len(targets)
        for i, target in enumerate(targets):
            reference = run_search(
                plan, ExactOracle(hierarchy, target), hierarchy
            )
            assert outcomes[i].result == reference, (i, target)


# ----------------------------------------------------------------------
# The batched exact-oracle kernels (engine.vector.make_answerer)
# ----------------------------------------------------------------------
class TestMakeAnswerer:
    @pytest.mark.parametrize("kind", ["matrix", "bitset", "sets"])
    def test_kernels_agree_on_dag(self, kind):
        from repro.engine.vector import make_answerer

        hierarchy = make_random_dag(30, seed=17)
        rng = np.random.default_rng(17)
        queries = rng.integers(0, hierarchy.n, size=200).astype(np.int64)
        targets = rng.integers(0, hierarchy.n, size=200).astype(np.int64)
        reference = np.array(
            [
                hierarchy.reaches(hierarchy.label(int(q)), hierarchy.label(int(z)))
                for q, z in zip(queries, targets)
            ]
        )
        answerer = make_answerer(hierarchy, len(queries), kind=kind)
        assert answerer.kind == kind
        assert np.array_equal(answerer(queries, targets), reference)

    def test_tree_kernel_agrees(self):
        from repro.engine.vector import make_answerer

        hierarchy = make_random_tree(40, seed=18)
        rng = np.random.default_rng(18)
        queries = rng.integers(0, hierarchy.n, size=150).astype(np.int64)
        targets = rng.integers(0, hierarchy.n, size=150).astype(np.int64)
        answerer = make_answerer(hierarchy, len(queries))
        assert answerer.kind == "tree"
        reference = np.array(
            [
                hierarchy.reaches(hierarchy.label(int(q)), hierarchy.label(int(z)))
                for q, z in zip(queries, targets)
            ]
        )
        assert np.array_equal(answerer(queries, targets), reference)

    def test_unknown_kind_rejected(self, vehicle_hierarchy):
        from repro.engine.vector import make_answerer
        from repro.exceptions import HierarchyError

        with pytest.raises(HierarchyError, match="unknown splitter kind"):
            make_answerer(vehicle_hierarchy, 5, kind="nope")


# ----------------------------------------------------------------------
# Session-level metrics (evaluation/comparison)
# ----------------------------------------------------------------------
class TestSessionMetrics:
    def test_metrics_match_engine_arrays(self):
        from repro.evaluation import metrics_from_engine, session_metrics

        hierarchy = make_random_tree(60, seed=21)
        distribution = random_distribution(hierarchy, 21)
        engine = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution
        )
        metrics = metrics_from_engine(engine)
        counts = engine.queries[engine.target_ix]
        assert metrics.num_sessions == hierarchy.n
        assert metrics.worst_queries == counts.max()
        assert metrics.mean_queries == pytest.approx(counts.mean())
        assert (
            metrics.p50_queries
            <= metrics.p90_queries
            <= metrics.p99_queries
            <= metrics.worst_queries
        )
        (batch,) = session_metrics(
            [GreedyTreePolicy()], hierarchy, distribution
        )
        assert batch == metrics
        row = metrics.as_row()
        assert row["Policy"] == "GreedyTree"
        assert row["max"] == metrics.worst_queries
