"""Unit tests for the FrameworkIGS driver and the policy protocol."""

from __future__ import annotations

import pytest

from repro.core.costs import TableCost
from repro.core.oracle import ExactOracle
from repro.core.policy import Policy
from repro.core.session import run_search, search_for_target
from repro.exceptions import BudgetExceededError, PolicyError
from repro.policies import GreedyTreePolicy, TopDownPolicy


class LoopingPolicy(Policy):
    """A broken policy that re-asks the same question forever."""

    name = "looper"

    def _reset_state(self):
        self._finished = False

    def done(self):
        return self._finished

    def result(self):
        return self.hierarchy.root

    def _select_query(self):
        return self.hierarchy.children(self.hierarchy.root)[0]

    def _apply_answer(self, query, answer):
        pass  # never converges


class TestRunSearch:
    def test_transcript_and_cost(self, vehicle_hierarchy, vehicle_distribution):
        policy = GreedyTreePolicy()
        result = search_for_target(
            policy, vehicle_hierarchy, "Sentra", vehicle_distribution
        )
        assert result.returned == "Sentra"
        assert result.num_queries == len(result.transcript)
        assert result.total_price == result.num_queries  # unit prices
        # Every transcript answer matches the ground truth.
        truth = vehicle_hierarchy.ancestors("Sentra")
        for query, answer in result.transcript:
            assert answer == (query in truth)

    def test_price_uses_cost_model(self, vehicle_hierarchy, vehicle_distribution):
        model = TableCost({}, default=2.5)
        result = search_for_target(
            policy=GreedyTreePolicy(),
            hierarchy=vehicle_hierarchy,
            target="Maxima",
            distribution=vehicle_distribution,
            cost_model=model,
        )
        assert result.total_price == pytest.approx(2.5 * result.num_queries)

    def test_budget_guard(self, vehicle_hierarchy):
        oracle = ExactOracle(vehicle_hierarchy, "Sentra")
        with pytest.raises(BudgetExceededError):
            run_search(
                LoopingPolicy(), oracle, vehicle_hierarchy, max_queries=25
            )

    def test_budget_error_names_policy_and_count(self, vehicle_hierarchy):
        """The error message identifies the offending policy and how many
        questions it burned — the operator-facing half of the guard."""
        oracle = ExactOracle(vehicle_hierarchy, "Sentra")
        with pytest.raises(BudgetExceededError) as excinfo:
            run_search(
                LoopingPolicy(), oracle, vehicle_hierarchy, max_queries=25
            )
        message = str(excinfo.value)
        assert "'looper'" in message  # the policy's reported name
        assert "LoopingPolicy" in message  # and its class
        assert "25" in message  # the exhausted budget / question count

    def test_single_node_hierarchy_needs_no_queries(self):
        from repro.core.hierarchy import Hierarchy

        h = Hierarchy([], nodes=["only"])
        result = search_for_target(TopDownPolicy(), h, "only")
        assert result.returned == "only"
        assert result.num_queries == 0

    def test_queries_helper(self, vehicle_hierarchy, vehicle_distribution):
        result = search_for_target(
            GreedyTreePolicy(), vehicle_hierarchy, "Honda", vehicle_distribution
        )
        assert result.queries() == tuple(q for q, _ in result.transcript)


class TestPolicyProtocol:
    def test_reset_required(self):
        policy = GreedyTreePolicy()
        with pytest.raises(PolicyError, match="reset"):
            policy.propose()

    def test_observe_before_propose(self, vehicle_hierarchy):
        policy = GreedyTreePolicy()
        policy.reset(vehicle_hierarchy)
        with pytest.raises(PolicyError, match="before propose"):
            policy.observe(True)

    def test_propose_idempotent(self, vehicle_hierarchy, vehicle_distribution):
        policy = GreedyTreePolicy()
        policy.reset(vehicle_hierarchy, vehicle_distribution)
        assert policy.propose() == policy.propose()

    def test_propose_after_done(self, vehicle_hierarchy, vehicle_distribution):
        policy = GreedyTreePolicy()
        result = search_for_target(
            policy, vehicle_hierarchy, "Sentra", vehicle_distribution
        )
        assert result.returned == "Sentra"
        with pytest.raises(PolicyError, match="finished"):
            policy.propose()

    def test_default_distribution_is_equal(self, vehicle_hierarchy):
        policy = GreedyTreePolicy()
        policy.reset(vehicle_hierarchy)
        assert policy.distribution is not None
        assert policy.distribution.p("Car") == pytest.approx(1 / 7)

    def test_oblivious_policy_skips_default(self, vehicle_hierarchy):
        policy = TopDownPolicy()
        policy.reset(vehicle_hierarchy)
        assert policy.distribution is None
