"""Unit tests for decision-tree construction and cost accounting."""

from __future__ import annotations

import pytest

from repro.core.costs import TableCost
from repro.core.decision_tree import (
    DecisionTree,
    Leaf,
    Question,
    build_decision_tree,
)
from repro.core.session import search_for_target
from repro.exceptions import SearchError
from repro.policies import GreedyTreePolicy, TopDownPolicy, WigsPolicy

from repro.testing import make_random_dag, random_distribution


class TestBuild:
    def test_leaves_biject_with_nodes(self, vehicle_hierarchy, vehicle_distribution):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        tree.validate()
        assert set(tree.leaf_depths()) == set(vehicle_hierarchy.nodes)

    def test_expected_cost_matches_simulation(
        self, vehicle_hierarchy, vehicle_distribution
    ):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        simulated = 0.0
        policy = GreedyTreePolicy()
        for target in vehicle_hierarchy.nodes:
            result = search_for_target(
                policy, vehicle_hierarchy, target, vehicle_distribution
            )
            simulated += vehicle_distribution.p(target) * result.num_queries
        assert tree.expected_cost(vehicle_distribution) == pytest.approx(simulated)

    @pytest.mark.parametrize("factory", [TopDownPolicy, WigsPolicy])
    def test_other_policies_validate(self, factory, vehicle_hierarchy):
        tree = build_decision_tree(factory, vehicle_hierarchy)
        tree.validate()

    def test_random_graphs(self):
        for seed in range(3):
            h = make_random_dag(15, seed=seed)
            dist = random_distribution(h, seed)
            from repro.policies import GreedyDagPolicy

            tree = build_decision_tree(GreedyDagPolicy, h, dist)
            tree.validate()

    def test_depth_cap(self, vehicle_hierarchy):
        with pytest.raises(SearchError, match="deeper"):
            build_decision_tree(TopDownPolicy, vehicle_hierarchy, max_depth=1)

    def test_num_questions_bound(self, vehicle_hierarchy, vehicle_distribution):
        """Internal nodes <= leaves - 1 (binary tree structure)."""
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        assert tree.num_questions() == len(tree.leaf_depths()) - 1


class TestCosts:
    def test_worst_case(self, vehicle_hierarchy, vehicle_distribution):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        depths = tree.leaf_depths()
        assert tree.worst_case_cost() == max(depths.values())

    def test_prices(self, vehicle_hierarchy, vehicle_distribution):
        model = TableCost({}, default=3.0)
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution, model
        )
        prices = tree.leaf_prices(model)
        depths = tree.leaf_depths()
        for target in depths:
            assert prices[target] == pytest.approx(3.0 * depths[target])
        assert tree.expected_price(
            vehicle_distribution, model
        ) == pytest.approx(3.0 * tree.expected_cost(vehicle_distribution))

    def test_duplicate_leaf_detected(self, vehicle_hierarchy):
        bogus = DecisionTree(
            Question("Car", Leaf("Sentra"), Leaf("Sentra")), vehicle_hierarchy
        )
        with pytest.raises(SearchError, match="two leaves"):
            bogus.leaf_depths()

    def test_validate_detects_missing_leaves(self, vehicle_hierarchy):
        bogus = DecisionTree(
            Question("Car", Leaf("Sentra"), Leaf("Honda")), vehicle_hierarchy
        )
        with pytest.raises(SearchError, match="do not cover"):
            bogus.validate()
