"""Tests for the paper-scale evaluation substrate.

Three subsystems under contract here:

* the packed-bitset reachability block and the splitter kernels
  (:meth:`repro.core.hierarchy.Hierarchy.reachability_bits`,
  :func:`repro.engine.make_splitter`) — every kind must produce identical
  splits on trees and on DAGs straddling ``_MATRIX_NODE_LIMIT``;
* the sharded parallel engine (:mod:`repro.engine.parallel`) — the
  :class:`~repro.engine.EngineResult` arrays *and* ``decision_nodes`` must
  be bit-identical for every ``jobs`` value;
* the persistent engine-result cache (:mod:`repro.engine.cache`) —
  hit/miss/corrupt-entry behaviour mirroring the plan cache's suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import hierarchy as hierarchy_mod
from repro.core.costs import TableCost
from repro.engine import (
    EngineResultCache,
    make_splitter,
    resolve_jobs,
    set_default_jobs,
    set_default_result_cache,
    simulate_all_targets,
)
from repro.exceptions import HierarchyError
from repro.policies import GreedyDagPolicy, GreedyTreePolicy, make_policy
from repro.testing import (
    make_random_dag,
    make_random_tree,
    random_distribution,
)


def _fresh_dag(n=40, seed=3):
    return make_random_dag(n, seed=seed)


def _assert_same_result(a, b):
    """Two EngineResults must agree bit for bit (the sharding contract)."""
    assert a.policy == b.policy
    assert a.method == b.method
    assert a.decision_nodes == b.decision_nodes
    assert np.array_equal(a.target_ix, b.target_ix)
    assert np.array_equal(a.queries, b.queries)
    assert np.array_equal(a.prices, b.prices, equal_nan=True)


# ----------------------------------------------------------------------
# Packed-bitset reachability
# ----------------------------------------------------------------------
class TestBitsetReachability:
    def test_rows_match_dense_matrix(self):
        hierarchy = _fresh_dag()
        bits = hierarchy.reachability_bits()
        matrix = hierarchy.reachability_matrix()
        assert bits.shape == (hierarchy.n, (hierarchy.n + 7) // 8)
        for u in range(hierarchy.n):
            unpacked = np.unpackbits(bits[u], count=hierarchy.n).astype(bool)
            assert np.array_equal(unpacked, matrix[u])

    def test_cached_and_read_only(self):
        hierarchy = _fresh_dag()
        bits = hierarchy.reachability_bits()
        assert hierarchy.reachability_bits() is bits
        assert not bits.flags.writeable

    def test_size_limit(self, monkeypatch):
        monkeypatch.setattr(hierarchy_mod, "_BITSET_BYTE_LIMIT", 8)
        hierarchy = _fresh_dag()
        assert hierarchy.reachability_bits() is None
        assert hierarchy.reachability_bits(allow_large=True) is not None

    def test_legacy_slot_tuple_pickles_still_load(self):
        """Plan-cache entries written before __getstate__ must not be
        misreported as corrupt (their state is a (None, slots) tuple)."""
        hierarchy = _fresh_dag()
        legacy = (
            None,
            {s: getattr(hierarchy, s) for s in hierarchy.__slots__},
        )
        clone = object.__new__(hierarchy_mod.Hierarchy)
        clone.__setstate__(legacy)
        assert clone.fingerprint() == hierarchy.fingerprint()
        assert clone.descendants_ix(0) == hierarchy.descendants_ix(0)

    def test_lazy_caches_excluded_from_pickles(self):
        """Plan-cache files / worker pickles must not embed n^2/8 caches."""
        import pickle

        hierarchy = _fresh_dag()
        cold = len(pickle.dumps(hierarchy))
        hierarchy.reachability_bits()
        hierarchy.reachability_matrix()
        for ix in range(hierarchy.n):
            hierarchy.descendants_ix(ix)
        warm = len(pickle.dumps(hierarchy))
        assert warm <= cold * 1.1  # indexes rebuild on demand, not shipped
        clone = pickle.loads(pickle.dumps(hierarchy))
        assert clone.fingerprint() == hierarchy.fingerprint()
        assert np.array_equal(
            clone.reachability_bits(), hierarchy.reachability_bits()
        )


# ----------------------------------------------------------------------
# Splitter kernels
# ----------------------------------------------------------------------
class TestSplitterKinds:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_dag_kinds_agree(self, seed):
        hierarchy = _fresh_dag(seed=seed)
        targets = np.arange(hierarchy.n, dtype=np.int64)
        rng = np.random.default_rng(seed)
        splitters = {
            kind: make_splitter(hierarchy, hierarchy.n, kind=kind)
            for kind in ("matrix", "bitset", "sets")
        }
        for qix in rng.integers(0, hierarchy.n, size=10):
            reference = None
            for kind, split in splitters.items():
                yes, no = split(int(qix), targets)
                assert np.concatenate([np.sort(yes), np.sort(no)]).size == len(
                    targets
                )
                if reference is None:
                    reference = (yes, no)
                else:
                    assert np.array_equal(yes, reference[0]), kind
                    assert np.array_equal(no, reference[1]), kind

    def test_tree_kind_agrees_with_every_forced_kind(self):
        hierarchy = make_random_tree(35, seed=7)
        targets = np.arange(hierarchy.n, dtype=np.int64)
        tree_split = make_splitter(hierarchy, hierarchy.n)
        assert tree_split.kind == "tree"
        for kind in ("matrix", "bitset", "sets"):
            other = make_splitter(hierarchy, hierarchy.n, kind=kind)
            for qix in range(hierarchy.n):
                assert np.array_equal(
                    np.sort(tree_split(qix, targets)[0]),
                    np.sort(other(qix, targets)[0]),
                ), kind

    def test_auto_kind_straddles_matrix_limit(self, monkeypatch):
        """Above _MATRIX_NODE_LIMIT the big-walk DAG kernel is the bitset."""
        hierarchy = _fresh_dag()
        below = make_splitter(hierarchy, hierarchy.n)
        assert below.kind == "matrix"
        fresh = _fresh_dag()  # no cached matrix to be reused
        monkeypatch.setattr(hierarchy_mod, "_MATRIX_NODE_LIMIT", 16)
        above = make_splitter(fresh, fresh.n)
        assert above.kind == "bitset"

    def test_auto_kind_small_walks_use_sets(self):
        hierarchy = _fresh_dag()
        assert make_splitter(hierarchy, 1).kind == "sets"

    def test_auto_kind_reuses_built_index(self):
        hierarchy = _fresh_dag()
        hierarchy.reachability_bits()
        # Even a tiny walk uses the bitset once it has been paid for.
        assert make_splitter(hierarchy, 1).kind == "bitset"

    def test_unknown_kind_rejected(self):
        with pytest.raises(HierarchyError, match="splitter kind"):
            make_splitter(_fresh_dag(), 4, kind="quantum")


# ----------------------------------------------------------------------
# Sharded parallel engine
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_tree_jobs_bit_identical(self):
        hierarchy = make_random_tree(120, seed=9)
        distribution = random_distribution(hierarchy, 9)
        sequential = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, jobs=1
        )
        for jobs in (2, 4):
            sharded = simulate_all_targets(
                GreedyTreePolicy(), hierarchy, distribution, jobs=jobs
            )
            assert sharded.method == "plan"
            _assert_same_result(sequential, sharded)

    def test_dag_bitset_path_jobs_bit_identical(self, monkeypatch):
        monkeypatch.setattr(hierarchy_mod, "_MATRIX_NODE_LIMIT", 16)
        hierarchy = _fresh_dag(n=60, seed=4)
        distribution = random_distribution(hierarchy, 4)
        sequential = simulate_all_targets(
            GreedyDagPolicy(), hierarchy, distribution, jobs=1
        )
        sharded = simulate_all_targets(
            GreedyDagPolicy(), hierarchy, distribution, jobs=3
        )
        _assert_same_result(sequential, sharded)

    def test_restricted_targets_jobs_bit_identical(self):
        hierarchy = make_random_tree(80, seed=10)
        distribution = random_distribution(hierarchy, 10)
        sample = list(hierarchy.nodes[::2])
        kwargs = dict(targets=sample, max_queries=2 * hierarchy.n + 10)
        sequential = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, jobs=1, **kwargs
        )
        sharded = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, jobs=2, **kwargs
        )
        _assert_same_result(sequential, sharded)

    def test_heterogeneous_prices_jobs_bit_identical(self):
        hierarchy = make_random_tree(60, seed=12)
        distribution = random_distribution(hierarchy, 12)
        costs = TableCost(
            {node: 1.0 + (i % 5) for i, node in enumerate(hierarchy.nodes)}
        )
        sequential = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, costs, jobs=1
        )
        sharded = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, costs, jobs=2
        )
        _assert_same_result(sequential, sharded)

    def test_loaded_plan_with_callers_hierarchy_jobs_bit_identical(
        self, tmp_path
    ):
        """Workers must walk with the caller's (pre-warmed) hierarchy."""
        from repro.plan import CompiledPlan, compile_policy

        hierarchy = make_random_tree(80, seed=13)
        distribution = random_distribution(hierarchy, 13)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        plan.save(tmp_path / "p.plan")
        loaded = CompiledPlan.load(tmp_path / "p.plan")
        assert loaded.hierarchy is not hierarchy  # equal but distinct
        sequential = simulate_all_targets(loaded, hierarchy, jobs=1)
        sharded = simulate_all_targets(loaded, hierarchy, jobs=2)
        _assert_same_result(sequential, sharded)

    def test_replay_policy_falls_back_sequential(self):
        from repro.testing import ForcedReplayPolicy

        hierarchy = make_random_tree(25, seed=11)
        distribution = random_distribution(hierarchy, 11)
        sequential = simulate_all_targets(
            ForcedReplayPolicy(seed=11), hierarchy, distribution, jobs=1
        )
        parallel = simulate_all_targets(
            ForcedReplayPolicy(seed=11), hierarchy, distribution, jobs=4
        )
        assert parallel.method == "replay"
        _assert_same_result(sequential, parallel)

    def test_resolve_jobs(self):
        import os

        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)
        assert resolve_jobs(-1) == max(1, os.cpu_count() or 1)
        set_default_jobs(2)
        try:
            assert resolve_jobs(None) == 2
            assert resolve_jobs(1) == 1  # explicit beats the default
        finally:
            set_default_jobs(None)
        assert resolve_jobs(None) == 1


# ----------------------------------------------------------------------
# Persistent engine-result cache (mirrors tests/test_plan.py's cache suite)
# ----------------------------------------------------------------------
class TestEngineResultCache:
    def _config(self, seed=21):
        hierarchy = make_random_tree(30, seed=seed)
        return hierarchy, random_distribution(hierarchy, seed)

    def test_hit_on_identical_config(self, tmp_path):
        hierarchy, distribution = self._config()
        cache = EngineResultCache(tmp_path)
        first = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, result_cache=cache
        )
        assert (cache.hits, cache.misses) == (0, 1)
        second = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, result_cache=cache
        )
        assert (cache.hits, cache.misses) == (1, 1)
        _assert_same_result(first, second)

    def test_miss_on_any_changed_ingredient(self, tmp_path):
        hierarchy, distribution = self._config()
        cache = EngineResultCache(tmp_path)
        base = dict(result_cache=cache)
        simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, **base
        )
        # Different distribution, prices, policy, targets, budget: all miss.
        simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            random_distribution(hierarchy, 77),
            **base,
        )
        simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            TableCost({node: 2.0 for node in hierarchy.nodes}),
            **base,
        )
        simulate_all_targets(
            make_policy("topdown"), hierarchy, distribution, **base
        )
        simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            targets=list(hierarchy.nodes),
            max_queries=hierarchy.n + 5,
            **base,
        )
        assert (cache.hits, cache.misses) == (0, 5)

    def test_corrupt_entry_rewalks_and_heals(self, tmp_path):
        hierarchy, distribution = self._config()
        cache = EngineResultCache(tmp_path)
        first = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, result_cache=cache
        )
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"garbage" * 10)
        with pytest.warns(UserWarning, match="unreadable engine-result"):
            again = simulate_all_targets(
                GreedyTreePolicy(), hierarchy, distribution, result_cache=cache
            )
        assert cache.errors == 1
        assert (cache.hits, cache.misses) == (0, 2)
        _assert_same_result(first, again)
        # The corrupt entry was overwritten with a good one.
        final = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, result_cache=cache
        )
        assert cache.hits == 1
        _assert_same_result(first, final)

    def test_foreign_hierarchy_entry_rejected(self, tmp_path):
        """An entry recorded on another hierarchy must not be served."""
        hierarchy, distribution = self._config()
        cache = EngineResultCache(tmp_path)
        result = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, result_cache=cache
        )
        other, _ = self._config(seed=22)
        (entry,) = tmp_path.glob("*.npz")
        key = entry.stem
        from repro.engine import result_key  # sanity: key is content-derived

        assert len(key) == len(
            result_key("x", result.target_ix, 1, np.ones(hierarchy.n))
        )
        with pytest.warns(UserWarning, match="unreadable engine-result"):
            assert cache.get(key, other) is None
        assert cache.errors == 1

    def test_uncacheable_policy_never_written(self, tmp_path):
        from repro.core.decision_tree import build_decision_tree
        from repro.policies import StaticTreePolicy

        hierarchy, distribution = self._config()
        tree = build_decision_tree(GreedyTreePolicy, hierarchy, distribution)
        cache = EngineResultCache(tmp_path)
        engine = simulate_all_targets(
            StaticTreePolicy(tree), hierarchy, distribution, result_cache=cache
        )
        assert engine.num_targets == hierarchy.n
        assert not any(tmp_path.iterdir())
        assert (cache.hits, cache.misses) == (0, 0)

    def test_replay_policy_results_cached(self, tmp_path):
        """Seeded replay results are deterministic, so they cache too."""
        from repro.testing import ForcedReplayPolicy

        hierarchy, distribution = self._config()
        cache = EngineResultCache(tmp_path)
        first = simulate_all_targets(
            ForcedReplayPolicy(), hierarchy, distribution, result_cache=cache
        )
        second = simulate_all_targets(
            ForcedReplayPolicy(), hierarchy, distribution, result_cache=cache
        )
        assert first.method == "replay"
        assert (cache.hits, cache.misses) == (1, 1)
        _assert_same_result(first, second)

    def test_pruned_walk_results_cached(self, tmp_path):
        """Sampled (fused-walk) evaluations cache per target-set."""
        hierarchy, distribution = self._config()
        cache = EngineResultCache(tmp_path)
        sample = list(hierarchy.nodes[:3])
        first = simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            targets=sample,
            result_cache=cache,
        )
        assert first.method == "vector"
        second = simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            targets=sample,
            result_cache=cache,
        )
        assert (cache.hits, cache.misses) == (1, 1)
        _assert_same_result(first, second)

    def test_plan_walked_under_different_cost_model_misses(self, tmp_path):
        """One plan, two walk-time cost models: entries must not collide."""
        from repro.plan import compile_policy

        hierarchy, distribution = self._config()
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        cache = EngineResultCache(tmp_path)
        priced = TableCost({node: 3.0 for node in hierarchy.nodes})
        unit = simulate_all_targets(plan, result_cache=cache)
        table = simulate_all_targets(
            plan, cost_model=priced, result_cache=cache
        )
        assert (cache.hits, cache.misses) == (0, 2)  # no collision
        assert table.mean_price() == pytest.approx(3.0 * unit.mean_price())
        # Each configuration hits its own entry on the re-run.
        again = simulate_all_targets(
            plan, cost_model=priced, result_cache=cache
        )
        assert cache.hits == 1
        _assert_same_result(table, again)

    def test_unchecked_entry_refused_by_checked_call(self, tmp_path):
        """check_correctness=True must never be served unvalidated numbers."""
        hierarchy, distribution = self._config()
        cache = EngineResultCache(tmp_path)
        unchecked = simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            check_correctness=False,
            result_cache=cache,
        )
        checked = simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            check_correctness=True,
            result_cache=cache,
        )
        assert (cache.hits, cache.misses) == (0, 2)  # unchecked entry refused
        _assert_same_result(unchecked, checked)
        # The checked walk overwrote the entry; both call styles now hit.
        simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, result_cache=cache
        )
        simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            check_correctness=False,
            result_cache=cache,
        )
        assert (cache.hits, cache.misses) == (2, 2)

    def test_default_cache_installed(self, tmp_path):
        hierarchy, distribution = self._config()
        cache = EngineResultCache(tmp_path)
        set_default_result_cache(cache)
        try:
            simulate_all_targets(GreedyTreePolicy(), hierarchy, distribution)
            simulate_all_targets(GreedyTreePolicy(), hierarchy, distribution)
            # result_cache=False opts out of the installed default: timed
            # callers must never be served (or write) cache entries.
            simulate_all_targets(
                GreedyTreePolicy(),
                hierarchy,
                distribution,
                result_cache=False,
            )
        finally:
            set_default_result_cache(None)
        assert (cache.hits, cache.misses) == (1, 1)
        # With the default cleared, nothing else is read or written.
        simulate_all_targets(GreedyTreePolicy(), hierarchy, distribution)
        assert (cache.hits, cache.misses) == (1, 1)


# ----------------------------------------------------------------------
# EngineResult.per_target memoization
# ----------------------------------------------------------------------
class TestPerTargetMemoized:
    def test_same_mapping_returned(self):
        hierarchy = make_random_tree(20, seed=5)
        distribution = random_distribution(hierarchy, 5)
        engine = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution
        )
        first = engine.per_target()
        assert engine.per_target() is first  # memoized, not rebuilt
        assert first[hierarchy.nodes[-1]] == engine.query_count(
            hierarchy.nodes[-1]
        )

    def test_mapping_is_read_only(self):
        hierarchy = make_random_tree(12, seed=6)
        engine = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, random_distribution(hierarchy, 6)
        )
        with pytest.raises(TypeError):
            engine.per_target()["x"] = 1

    def test_result_stays_picklable_after_memoization(self):
        import pickle

        hierarchy = make_random_tree(12, seed=6)
        engine = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, random_distribution(hierarchy, 6)
        )
        first = engine.per_target()
        clone = pickle.loads(pickle.dumps(engine))
        assert dict(clone.per_target()) == dict(first)
        assert np.array_equal(clone.queries, engine.queries)
