"""Tests for the compile/execute split (:mod:`repro.plan`).

The headline contract: for every registry policy, on tree and DAG fixtures,
executing the compiled plan through a cursor matches legacy ``run_search``
*exactly* — returned node, query count, total price, and the full
transcript — for every target.  Persistence must round-trip plans
losslessly, the cache must hit on identical configurations and miss on any
changed ingredient, and corrupt cache files must degrade to a recompile.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.costs import TableCost, UnitCost, random_costs
from repro.core.oracle import ExactOracle
from repro.core.session import run_search, search_for_target
from repro.engine import simulate_all_targets
from repro.exceptions import PlanError, PolicyError
from repro.plan import (
    CompiledPlan,
    LazyPlan,
    PlanCache,
    compile_policy,
    plan_key,
)
from repro.policies import GreedyTreePolicy, available_policies, make_policy
from repro.testing import (
    make_random_dag,
    make_random_tree,
    random_distribution,
    vehicle_distribution,
    vehicle_hierarchy,
)

TREE_ONLY = {"greedy-tree"}


def _assert_run_search_parity(executor, policy, hierarchy, distribution,
                              cost_model=None):
    """Plan execution must equal legacy run_search, target by target."""
    for target in hierarchy.nodes:
        reference = run_search(
            policy,
            ExactOracle(hierarchy, target),
            hierarchy,
            distribution,
            cost_model,
        )
        served = run_search(
            executor, ExactOracle(hierarchy, target), cost_model=cost_model
        )
        assert served.returned == reference.returned == target
        assert served.num_queries == reference.num_queries
        assert served.total_price == pytest.approx(
            reference.total_price, abs=1e-12
        )
        assert served.transcript == reference.transcript


class TestCompileParity:
    """Acceptance: CompiledPlan matches legacy run_search exactly."""

    @pytest.mark.parametrize("name", available_policies())
    def test_tree(self, name):
        hierarchy = make_random_tree(28, seed=11)
        distribution = random_distribution(hierarchy, 11)
        plan = compile_policy(make_policy(name), hierarchy, distribution)
        _assert_run_search_parity(
            plan, make_policy(name), hierarchy, distribution
        )

    @pytest.mark.parametrize(
        "name", [n for n in available_policies() if n not in TREE_ONLY]
    )
    def test_dag(self, name):
        hierarchy = make_random_dag(24, seed=12)
        distribution = random_distribution(hierarchy, 12)
        plan = compile_policy(make_policy(name), hierarchy, distribution)
        _assert_run_search_parity(
            plan, make_policy(name), hierarchy, distribution
        )

    @pytest.mark.parametrize("name", ["greedy-tree", "cost-greedy"])
    def test_heterogeneous_prices(self, name):
        hierarchy = make_random_tree(22, seed=13)
        distribution = random_distribution(hierarchy, 13)
        costs = random_costs(hierarchy, np.random.default_rng(13))
        plan = compile_policy(
            make_policy(name), hierarchy, distribution, costs
        )
        _assert_run_search_parity(
            plan, make_policy(name), hierarchy, distribution, costs
        )

    def test_plan_drives_search_for_target(self):
        hierarchy = make_random_tree(15, seed=14)
        distribution = random_distribution(hierarchy, 14)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        # hierarchy defaults to the plan's own.
        result = search_for_target(plan, target=hierarchy.nodes[-1])
        assert result.returned == hierarchy.nodes[-1]

    def test_run_search_rejects_stale_plan(self):
        from repro.core.hierarchy import Hierarchy
        from repro.exceptions import SearchError

        old = Hierarchy([("r", "a"), ("r", "b"), ("a", "c")])
        new = Hierarchy([("r", "a"), ("r", "b"), ("b", "c")])  # re-parented
        plan = compile_policy(
            GreedyTreePolicy(), old, random_distribution(old, 1)
        )
        with pytest.raises(SearchError, match="stale plan"):
            search_for_target(plan, new, target="c")

    def test_structure_counts(self, vehicle_hierarchy, vehicle_distribution):
        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        # One leaf per target, binary questions => n - 1 internal nodes.
        assert plan.num_leaves == vehicle_hierarchy.n
        assert plan.num_questions == vehicle_hierarchy.n - 1
        assert plan.expected_cost(vehicle_distribution) == pytest.approx(2.04)
        plan.validate()

    def test_as_decision_tree_matches(
        self, vehicle_hierarchy, vehicle_distribution
    ):
        from repro.core.decision_tree import build_decision_tree

        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        tree = plan.as_decision_tree()
        reference = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        assert tree.leaf_depths() == reference.leaf_depths()
        assert tree.leaf_prices(UnitCost()) == reference.leaf_prices(
            UnitCost()
        )


class TestSearchCursor:
    @pytest.fixture
    def plan(self, vehicle_hierarchy, vehicle_distribution):
        return compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )

    def test_propose_idempotent(self, plan):
        cursor = plan.start()
        assert cursor.propose() == cursor.propose()

    def test_undo_is_exact_and_free(self, plan):
        cursor = plan.start()
        first = cursor.propose()
        cursor.observe(False)
        second = cursor.propose()
        cursor.undo()
        assert cursor.propose() == first
        cursor.observe(False)  # re-observing lands in the identical state
        assert cursor.propose() == second
        cursor.undo()
        cursor.observe(True)  # the sibling branch is reachable after undo
        assert cursor.num_queries == 1

    def test_undo_at_root_raises(self, plan):
        with pytest.raises(PolicyError, match="undo"):
            plan.start().undo()

    def test_result_before_done_raises(self, plan):
        with pytest.raises(PolicyError, match="not finished"):
            plan.start().result()

    def test_propose_after_done_raises(self, plan, vehicle_hierarchy):
        oracle = ExactOracle(vehicle_hierarchy, "Maxima")
        cursor = plan.start()
        while not cursor.done():
            cursor.observe(oracle.answer(cursor.propose()))
        assert cursor.result() == "Maxima"
        with pytest.raises(PolicyError):
            cursor.propose()
        with pytest.raises(PolicyError):
            cursor.observe(True)

    def test_sessions_are_independent(self, plan, vehicle_hierarchy):
        """Concurrent cursors over one shared plan do not interfere."""
        oracles = [
            ExactOracle(vehicle_hierarchy, t) for t in vehicle_hierarchy.nodes
        ]
        cursors = [plan.start() for _ in oracles]
        # Interleave all sessions round-robin until each finishes.
        live = list(zip(cursors, oracles))
        while live:
            still = []
            for cursor, oracle in live:
                cursor.observe(oracle.answer(cursor.propose()))
                if not cursor.done():
                    still.append((cursor, oracle))
            live = still
        for cursor, oracle in zip(cursors, oracles):
            assert cursor.result() == oracle.target


class TestImmutability:
    def test_attributes_frozen(self, vehicle_hierarchy, vehicle_distribution):
        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        with pytest.raises(PlanError, match="immutable"):
            plan.policy_name = "other"

    def test_arrays_read_only(self, vehicle_hierarchy, vehicle_distribution):
        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        with pytest.raises(ValueError):
            plan.query_ix[0] = 5


class TestPersistence:
    @pytest.mark.parametrize("builder", ["tree", "dag"])
    def test_save_load_round_trip(self, tmp_path, builder):
        if builder == "tree":
            hierarchy = make_random_tree(20, seed=21)
        else:
            hierarchy = make_random_dag(20, seed=21)
        distribution = random_distribution(hierarchy, 21)
        policy = make_policy("greedy-dag" if builder == "dag" else "greedy-tree")
        plan = compile_policy(policy, hierarchy, distribution)
        path = tmp_path / f"{builder}.plan"
        plan.save(path)
        loaded = CompiledPlan.load(path)
        assert loaded.config_key == plan.config_key
        assert loaded.policy_name == plan.policy_name
        assert np.array_equal(loaded.query_ix, plan.query_ix)
        assert np.array_equal(loaded.yes_child, plan.yes_child)
        assert np.array_equal(loaded.no_child, plan.no_child)
        assert np.array_equal(loaded.target_ix, plan.target_ix)
        assert loaded.hierarchy.nodes == hierarchy.nodes
        # The reloaded plan serves searches identically.
        _assert_run_search_parity(
            loaded,
            make_policy("greedy-dag" if builder == "dag" else "greedy-tree"),
            hierarchy,
            distribution,
        )

    def test_pickle_round_trip(self, vehicle_hierarchy, vehicle_distribution):
        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert np.array_equal(clone.query_ix, plan.query_ix)
        # Pickling preserves the read-only flag on the arrays.
        with pytest.raises(ValueError):
            clone.query_ix[0] = 5

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PlanError, match="cannot read"):
            CompiledPlan.load(tmp_path / "nope.plan")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.plan"
        path.write_bytes(b"this is not a pickle at all")
        with pytest.raises(PlanError, match="corrupt"):
            CompiledPlan.load(path)

    def test_load_foreign_pickle(self, tmp_path):
        path = tmp_path / "foreign.plan"
        path.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(PlanError, match="not a compiled-plan file"):
            CompiledPlan.load(path)


class TestPlanKey:
    def test_stable_for_identical_config(self, vehicle_hierarchy):
        d1 = vehicle_distribution()
        d2 = vehicle_distribution()
        assert plan_key(
            GreedyTreePolicy(), vehicle_hierarchy, d1
        ) == plan_key(GreedyTreePolicy(), vehicle_hierarchy, d2)

    def test_changes_with_each_ingredient(self, vehicle_hierarchy):
        dist = vehicle_distribution()
        base = plan_key(GreedyTreePolicy(), vehicle_hierarchy, dist)
        other_dist = random_distribution(vehicle_hierarchy, 5)
        assert plan_key(
            GreedyTreePolicy(), vehicle_hierarchy, other_dist
        ) != base
        priced = TableCost(
            {node: 2.0 for node in vehicle_hierarchy.nodes}
        )
        assert plan_key(
            GreedyTreePolicy(), vehicle_hierarchy, dist, priced
        ) != base
        assert plan_key(
            GreedyTreePolicy(rounded=True), vehicle_hierarchy, dist
        ) != base
        other_h = make_random_tree(7, seed=3)
        assert plan_key(
            GreedyTreePolicy(), other_h, random_distribution(other_h, 1)
        ) != base

    def test_default_distribution_matches_equal(self, vehicle_hierarchy):
        from repro.core.distribution import TargetDistribution

        equal = TargetDistribution.equal(vehicle_hierarchy)
        assert plan_key(GreedyTreePolicy(), vehicle_hierarchy) == plan_key(
            GreedyTreePolicy(), vehicle_hierarchy, equal
        )

    def test_random_seed_in_key(self, vehicle_hierarchy):
        dist = vehicle_distribution()
        assert plan_key(
            make_policy("random", seed=1), vehicle_hierarchy, dist
        ) != plan_key(make_policy("random", seed=2), vehicle_hierarchy, dist)

    def test_heap_children_in_key(self, vehicle_hierarchy):
        # The heap variant can break weight ties differently, so it must
        # not share a cache entry with the plain child scan.
        dist = vehicle_distribution()
        assert plan_key(
            GreedyTreePolicy(heap_children=True), vehicle_hierarchy, dist
        ) != plan_key(GreedyTreePolicy(), vehicle_hierarchy, dist)


class TestPlanCache:
    def test_hit_on_identical_config(self, tmp_path, vehicle_hierarchy):
        dist = vehicle_distribution()
        cache = PlanCache(tmp_path)
        first = cache.get_or_compile(
            GreedyTreePolicy(), vehicle_hierarchy, dist
        )
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.get_or_compile(
            GreedyTreePolicy(), vehicle_hierarchy, dist
        )
        assert (cache.hits, cache.misses) == (1, 1)
        assert second.config_key == first.config_key
        assert np.array_equal(second.query_ix, first.query_ix)

    def test_miss_on_changed_distribution_and_costs(
        self, tmp_path, vehicle_hierarchy
    ):
        dist = vehicle_distribution()
        cache = PlanCache(tmp_path)
        cache.get_or_compile(GreedyTreePolicy(), vehicle_hierarchy, dist)
        cache.get_or_compile(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            random_distribution(vehicle_hierarchy, 9),
        )
        cache.get_or_compile(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            dist,
            TableCost({node: 3.0 for node in vehicle_hierarchy.nodes}),
        )
        assert (cache.hits, cache.misses) == (0, 3)

    def test_corrupt_entry_recompiles(self, tmp_path, vehicle_hierarchy):
        dist = vehicle_distribution()
        cache = PlanCache(tmp_path)
        plan = cache.get_or_compile(
            GreedyTreePolicy(), vehicle_hierarchy, dist
        )
        cache.path_for(plan.config_key).write_bytes(b"garbage" * 10)
        with pytest.warns(UserWarning, match="unreadable plan-cache entry"):
            again = cache.get_or_compile(
                GreedyTreePolicy(), vehicle_hierarchy, dist
            )
        assert cache.errors == 1
        assert (cache.hits, cache.misses) == (0, 2)
        assert np.array_equal(again.query_ix, plan.query_ix)
        # The corrupt entry was overwritten with a good one.
        final = cache.get_or_compile(
            GreedyTreePolicy(), vehicle_hierarchy, dist
        )
        assert cache.hits == 1
        assert np.array_equal(final.query_ix, plan.query_ix)

    def test_engine_uses_cache(self, tmp_path, vehicle_hierarchy):
        dist = vehicle_distribution()
        cache = PlanCache(tmp_path)
        first = simulate_all_targets(
            GreedyTreePolicy(), vehicle_hierarchy, dist, plan_cache=cache
        )
        second = simulate_all_targets(
            GreedyTreePolicy(), vehicle_hierarchy, dist, plan_cache=cache
        )
        assert cache.hits == 1 and cache.misses == 1
        assert np.array_equal(first.queries, second.queries)

    def test_uncacheable_policy_never_written(self, tmp_path):
        from repro.core.decision_tree import build_decision_tree
        from repro.policies import StaticTreePolicy

        hierarchy = make_random_tree(10, seed=4)
        dist = random_distribution(hierarchy, 4)
        tree = build_decision_tree(GreedyTreePolicy, hierarchy, dist)
        cache = PlanCache(tmp_path)
        plan = cache.get_or_compile(StaticTreePolicy(tree), hierarchy, dist)
        assert cache.misses == 1
        assert not any(tmp_path.iterdir())
        # Such plans carry no content key and the cache refuses them: two
        # StaticTree configurations would collide under one fingerprint.
        assert plan.config_key == ""
        with pytest.raises(PlanError, match="not plan_cacheable"):
            cache.put(plan)


class TestEngineOnPlans:
    def test_plan_equals_policy_path(self, vehicle_hierarchy, vehicle_distribution):
        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        via_plan = simulate_all_targets(plan)
        via_policy = simulate_all_targets(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        assert via_plan.method == via_policy.method == "plan"
        assert np.array_equal(via_plan.queries, via_policy.queries)
        assert np.array_equal(
            via_plan.prices[via_plan.target_ix],
            via_policy.prices[via_policy.target_ix],
        )

    def test_restricted_targets_prune_plan_walk(
        self, vehicle_hierarchy, vehicle_distribution
    ):
        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        engine = simulate_all_targets(plan, targets=["Maxima", "Sentra"])
        assert engine.num_targets == 2
        # Only the questions on the two root-to-leaf paths are visited.
        assert engine.decision_nodes < plan.num_questions

    def test_mismatched_hierarchy_rejected(self, vehicle_hierarchy,
                                           vehicle_distribution):
        from repro.core.hierarchy import Hierarchy
        from repro.exceptions import SearchError

        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        other = make_random_tree(9, seed=2)
        with pytest.raises(SearchError, match="node indexing"):
            simulate_all_targets(plan, other)
        # Same labels, different edges must be rejected too.
        relabeled = Hierarchy(
            [
                ("Vehicle", "Car"),
                ("Car", "Nissan"),
                ("Car", "Honda"),
                ("Vehicle", "Mercedes"),  # re-parented vs the original
                ("Nissan", "Maxima"),
                ("Nissan", "Sentra"),
            ]
        )
        with pytest.raises(SearchError, match="node indexing"):
            simulate_all_targets(plan, relabeled)

    def test_restricted_targets_skip_compilation(self):
        """Uncached sampled evaluation takes the fused pruned walk."""
        hierarchy = make_random_tree(40, seed=41)
        distribution = random_distribution(hierarchy, 41)
        sample = list(hierarchy.nodes[5:9])
        engine = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, targets=sample
        )
        assert engine.method == "vector"
        full = simulate_all_targets(
            compile_policy(GreedyTreePolicy(), hierarchy, distribution),
            targets=sample,
        )
        assert engine.decision_nodes == full.decision_nodes  # same pruning
        for target in sample:
            assert engine.query_count(target) == full.query_count(target)

    def test_small_sample_with_cache_takes_pruned_walk(self, tmp_path):
        """A one-shot small sample never pays for a full compile."""
        hierarchy = make_random_tree(30, seed=42)
        distribution = random_distribution(hierarchy, 42)
        cache = PlanCache(tmp_path)
        engine = simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            targets=list(hierarchy.nodes[:3]),
            plan_cache=cache,
        )
        assert engine.method == "vector"
        assert (cache.hits, cache.misses) == (0, 0)
        assert not any(tmp_path.iterdir())  # nothing was compiled to disk

    def test_sampled_eval_loads_plan_already_on_disk(self, tmp_path):
        """Once a plan is cached, sampled runs load it instead of walking."""
        hierarchy = make_random_tree(30, seed=42)
        distribution = random_distribution(hierarchy, 42)
        cache = PlanCache(tmp_path)
        full = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, plan_cache=cache
        )
        assert cache.misses == 1  # the full run compiled and stored the plan
        engine = simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            targets=list(hierarchy.nodes[:3]),
            plan_cache=cache,
        )
        assert engine.method == "plan"
        assert cache.hits == 1
        for node in hierarchy.nodes[:3]:
            assert engine.query_count(node) == full.query_count(node)

    def test_sampled_probe_heals_corrupt_cache_entry(self, tmp_path):
        """A corrupt entry warns once, is deleted, then misses silently."""
        from repro.plan.compile import plan_key

        hierarchy = make_random_tree(30, seed=42)
        distribution = random_distribution(hierarchy, 42)
        cache = PlanCache(tmp_path)
        key = plan_key(GreedyTreePolicy(), hierarchy, distribution)
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_bytes(b"garbage" * 10)
        kwargs = dict(
            targets=list(hierarchy.nodes[:3]), plan_cache=cache
        )
        with pytest.warns(UserWarning, match="unreadable plan-cache entry"):
            engine = simulate_all_targets(
                GreedyTreePolicy(), hierarchy, distribution, **kwargs
            )
        assert engine.method == "vector"  # fell back to the pruned walk
        assert cache.errors == 1
        assert not cache.path_for(key).exists()  # bad entry dropped
        # The next probe is a clean, silent miss.
        again = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, **kwargs
        )
        assert again.method == "vector"
        assert cache.errors == 1

    def test_large_sample_with_cache_compiles_through_it(self, tmp_path):
        """A sample that would retrace most of the plan compiles reusably."""
        hierarchy = make_random_tree(30, seed=42)
        distribution = random_distribution(hierarchy, 42)
        cache = PlanCache(tmp_path)
        engine = simulate_all_targets(
            GreedyTreePolicy(),
            hierarchy,
            distribution,
            targets=list(hierarchy.nodes[:-1]),
            plan_cache=cache,
        )
        assert engine.method == "plan"
        assert cache.misses == 1


class CountingGreedy(GreedyTreePolicy):
    """Greedy tree policy counting how often it actually thinks."""

    calls = 0

    def _select_query(self):
        type(self).calls += 1
        return super()._select_query()


class TestLazyPlan:
    def test_serving_parity(self):
        hierarchy = make_random_tree(25, seed=31)
        distribution = random_distribution(hierarchy, 31)
        lazy = LazyPlan(GreedyTreePolicy(), hierarchy, distribution)
        _assert_run_search_parity(
            lazy, GreedyTreePolicy(), hierarchy, distribution
        )

    def test_repeated_paths_need_no_policy_work(self):
        hierarchy = make_random_tree(30, seed=32)
        distribution = random_distribution(hierarchy, 32)
        CountingGreedy.calls = 0
        lazy = LazyPlan(CountingGreedy(), hierarchy, distribution)
        target = hierarchy.nodes[17]
        run_search(lazy, ExactOracle(hierarchy, target))
        first_pass = CountingGreedy.calls
        assert first_pass > 0
        for _ in range(5):
            run_search(lazy, ExactOracle(hierarchy, target))
        assert CountingGreedy.calls == first_pass  # memoized: zero new work

    def test_undo_for_policies_without_native_undo(self):
        from repro.testing import ForcedReplayPolicy

        hierarchy = make_random_tree(12, seed=33)
        distribution = random_distribution(hierarchy, 33)
        lazy = LazyPlan(ForcedReplayPolicy(seed=7), hierarchy, distribution)
        cursor = lazy.start()
        first = cursor.propose()
        cursor.observe(True)
        cursor.undo()
        assert cursor.propose() == first
        cursor.observe(False)  # sibling branch expands after backtracking
        assert cursor.num_queries == 1

    def test_online_hands_policy_back_clean(self):
        """The serving loops must not leave journaling on the policy."""
        from repro.online import simulate_online_labeling

        hierarchy = make_random_tree(15, seed=34)
        policy = GreedyTreePolicy()
        stream = [hierarchy.nodes[3]] * 8
        simulate_online_labeling(policy, hierarchy, stream, block_size=4)
        assert not policy._undo_enabled
        assert policy._undo_log == []
