"""Unit tests for the exponential optimal DP and the approximation bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.decision_tree import build_decision_tree
from repro.core.distribution import TargetDistribution
from repro.core.hierarchy import Hierarchy
from repro.evaluation import worst_case_cost
from repro.policies import (
    GreedyTreePolicy,
    WigsPolicy,
    greedy_reference_cost,
    optimal_expected_cost,
    optimal_worst_case_cost,
)
from repro.exceptions import SearchError
from repro.taxonomy.generators import balanced_tree, path_graph, star_graph

from repro.testing import make_random_dag, make_random_tree, random_distribution

#: Theorem 2's golden-ratio bound for trees.
PHI = (1 + math.sqrt(5)) / 2


class TestOptimalValues:
    def test_two_node_chain(self):
        h = Hierarchy([("a", "b")])
        dist = TargetDistribution.equal(h)
        assert optimal_expected_cost(h, dist) == pytest.approx(1.0)
        assert optimal_worst_case_cost(h) == 1

    def test_vehicle_example(self, vehicle_hierarchy, vehicle_distribution):
        """The paper's Example 2 strategies are optimal for their criteria."""
        assert optimal_expected_cost(
            vehicle_hierarchy, vehicle_distribution
        ) == pytest.approx(2.04)
        assert optimal_worst_case_cost(vehicle_hierarchy) == 4

    def test_balanced_binary_tree_worst_case(self):
        # Queries are constrained to subtree splits (not arbitrary subsets),
        # so the information-theoretic ceil(log2(15)) = 4 is NOT achievable
        # on a complete binary tree; the subtree-constrained optimum is 5.
        h = balanced_tree(2, 3)  # 15 nodes
        assert optimal_worst_case_cost(h) == 5

    def test_star_worst_case_is_linear(self):
        h = star_graph(6)
        # Any policy must query the leaves one by one on a star.
        assert optimal_worst_case_cost(h) == 5

    def test_path_expected_cost_is_binary_search(self):
        h = path_graph(8)
        dist = TargetDistribution.equal(h)
        assert optimal_expected_cost(h, dist) == pytest.approx(3.0)

    def test_refuses_large_instances(self):
        h = make_random_tree(25, seed=0)
        with pytest.raises(SearchError, match="exponential"):
            optimal_expected_cost(h, TargetDistribution.equal(h))


class TestApproximationBounds:
    @pytest.mark.parametrize("seed", range(10))
    def test_theorem2_phi_bound_on_trees(self, seed):
        """Greedy expected cost <= phi * optimum on trees (Theorem 2)."""
        h = make_random_tree(10, seed=seed)
        dist = random_distribution(h, seed)
        tree = build_decision_tree(GreedyTreePolicy, h, dist)
        greedy = tree.expected_cost(dist)
        best = optimal_expected_cost(h, dist)
        assert greedy <= PHI * best + 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_reference_greedy_matches_policy_objective(self, seed):
        """The DP greedy reference obeys the same bound (tie-independent)."""
        h = make_random_tree(9, seed=seed)
        dist = random_distribution(h, seed)
        reference = greedy_reference_cost(h, dist)
        best = optimal_expected_cost(h, dist)
        assert reference <= PHI * best + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_dag_greedy_within_logarithmic_bound(self, seed):
        """Theorem 1's 2(1+3 ln n) bound, checked loosely on small DAGs."""
        from repro.policies import GreedyDagPolicy

        h = make_random_dag(10, seed=seed)
        dist = random_distribution(h, seed)
        tree = build_decision_tree(GreedyDagPolicy, h, dist)
        greedy = tree.expected_cost(dist)
        best = optimal_expected_cost(h, dist)
        assert greedy <= 2 * (1 + 3 * math.log(h.n)) * best + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_wigs_worst_case_reasonable(self, seed):
        """WIGS stays within a small factor of the worst-case optimum."""
        h = make_random_tree(12, seed=seed)
        wigs = worst_case_cost(WigsPolicy(), h)
        best = optimal_worst_case_cost(h)
        assert wigs <= 2 * best + 2
