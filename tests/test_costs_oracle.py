"""Unit tests for query cost models and oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import TableCost, UnitCost, random_costs
from repro.core.oracle import (
    CountingOracle,
    ErrorRateModel,
    ExactOracle,
    MajorityVoteOracle,
    NoisyOracle,
)
from repro.exceptions import CostModelError, OracleError


class _ScriptedOracle:
    """Answers from a fixed script; counts how many were consumed."""

    def __init__(self, script):
        self.script = list(script)
        self.asked = 0

    def answer(self, query):
        answer = self.script[self.asked]
        self.asked += 1
        return answer


class TestCostModels:
    def test_unit(self, vehicle_hierarchy):
        model = UnitCost()
        assert model.cost("Car") == 1.0
        assert model.total(["Car", "Nissan"]) == 2.0
        assert model.as_array(vehicle_hierarchy).sum() == 7.0

    def test_unit_price_validated(self):
        with pytest.raises(CostModelError):
            UnitCost(0.0)

    def test_table(self):
        model = TableCost({"easy": 0.5, "hard": 1.5}, default=1.0)
        assert model.cost("easy") == 0.5
        assert model.cost("unknown") == 1.0

    def test_table_missing_without_default(self):
        model = TableCost({"easy": 0.5})
        with pytest.raises(CostModelError, match="no price"):
            model.cost("unknown")

    def test_table_rejects_nonpositive(self):
        with pytest.raises(CostModelError):
            TableCost({"a": 0.0})
        with pytest.raises(CostModelError):
            TableCost({"a": 1.0}, default=-1.0)

    def test_random_costs_bounds(self, vehicle_hierarchy, rng):
        model = random_costs(vehicle_hierarchy, rng, low=0.5, high=1.5)
        prices = model.as_array(vehicle_hierarchy)
        assert (prices >= 0.5).all() and (prices <= 1.5).all()

    def test_random_costs_validates_range(self, vehicle_hierarchy, rng):
        with pytest.raises(CostModelError):
            random_costs(vehicle_hierarchy, rng, low=2.0, high=1.0)


class TestExactOracle:
    def test_truthful(self, vehicle_hierarchy):
        oracle = ExactOracle(vehicle_hierarchy, "Sentra")
        assert oracle.answer("Vehicle")
        assert oracle.answer("Nissan")
        assert oracle.answer("Sentra")
        assert not oracle.answer("Honda")
        assert not oracle.answer("Maxima")

    def test_unknown_target(self, vehicle_hierarchy):
        with pytest.raises(OracleError):
            ExactOracle(vehicle_hierarchy, "Tesla")

    def test_unknown_query(self, vehicle_hierarchy):
        oracle = ExactOracle(vehicle_hierarchy, "Car")
        with pytest.raises(OracleError):
            oracle.answer("Tesla")


class TestNoisyOracle:
    def test_zero_noise_is_exact(self, vehicle_hierarchy, rng):
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        noisy = NoisyOracle(inner, 0.0, rng)
        assert all(
            noisy.answer(q) == inner.answer(q) for q in vehicle_hierarchy.nodes
        )

    def test_error_rate_validated(self, vehicle_hierarchy, rng):
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        with pytest.raises(OracleError):
            NoisyOracle(inner, 0.6, rng)

    def test_transient_noise_varies(self, vehicle_hierarchy):
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        noisy = NoisyOracle(inner, 0.4, np.random.default_rng(0))
        answers = [noisy.answer("Vehicle") for _ in range(200)]
        assert len(set(answers)) == 2  # flips happen both ways over time

    def test_persistent_noise_is_stable_per_node(self, vehicle_hierarchy):
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        noisy = NoisyOracle(
            inner, 0.4, np.random.default_rng(0), persistent=True
        )
        for node in vehicle_hierarchy.nodes:
            first = noisy.answer(node)
            assert all(noisy.answer(node) == first for _ in range(5))

    def test_flip_rate_statistics(self, vehicle_hierarchy):
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        noisy = NoisyOracle(inner, 0.2, np.random.default_rng(7))
        flips = sum(
            noisy.answer("Vehicle") != inner.answer("Vehicle")
            for _ in range(3000)
        )
        assert 0.15 < flips / 3000 < 0.25


class TestMajorityVote:
    def test_overcomes_transient_noise(self, vehicle_hierarchy):
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        noisy = NoisyOracle(inner, 0.2, np.random.default_rng(5))
        voted = MajorityVoteOracle(noisy, votes=11)
        wrong = sum(
            voted.answer(q) != inner.answer(q)
            for q in vehicle_hierarchy.nodes
            for _ in range(20)
        )
        assert wrong / (7 * 20) < 0.05

    def test_votes_validated(self, vehicle_hierarchy):
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        with pytest.raises(OracleError):
            MajorityVoteOracle(inner, votes=2)

    def test_cannot_fix_persistent_noise(self, vehicle_hierarchy):
        """The paper's point: persistent noise defeats repetition."""
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        noisy = NoisyOracle(
            inner, 0.4, np.random.default_rng(3), persistent=True
        )
        wrong_nodes = [
            q for q in vehicle_hierarchy.nodes if noisy.answer(q) != inner.answer(q)
        ]
        voted = MajorityVoteOracle(noisy, votes=21)
        for q in wrong_nodes:
            assert voted.answer(q) != inner.answer(q)

    def test_early_stop_pins_vote_counts(self):
        """Voting stops the moment the majority is mathematically decided."""
        cases = [
            # (scripted votes, expected answer, votes actually consumed)
            ([True, True, True], True, 3),  # unanimous: t+1 of 5 suffice
            ([False, False, False], False, 3),
            ([True, False, True, True], True, 4),
            ([True, False, False, True, True], True, 5),  # maximally split
            ([False, True, True, False, False], False, 5),
        ]
        for script, expected, consumed in cases:
            inner = _ScriptedOracle(script)
            voted = MajorityVoteOracle(inner, votes=5)
            assert voted.answer("q") is expected
            assert inner.asked == consumed

    def test_early_stop_single_vote(self):
        inner = _ScriptedOracle([True])
        assert MajorityVoteOracle(inner, votes=1).answer("q") is True
        assert inner.asked == 1

    def test_inner_counter_sees_only_asked_votes(self, vehicle_hierarchy):
        """The inner-CountingOracle contract from the docstring."""
        inner = CountingOracle(ExactOracle(vehicle_hierarchy, "Sentra"))
        voted = MajorityVoteOracle(inner, votes=7)
        voted.answer("Car")  # exact oracle: unanimous, stops at t+1 = 4
        assert inner.num_queries == 4


class TestErrorRateModel:
    def test_validates_rates(self):
        with pytest.raises(OracleError):
            ErrorRateModel(0.5)
        with pytest.raises(OracleError):
            ErrorRateModel(0.1, node_rates={"Car": 0.7})

    def test_noiseless(self):
        assert ErrorRateModel(0.0).noiseless
        assert ErrorRateModel(0.0, node_rates={"Car": 0.0}).noiseless
        assert not ErrorRateModel(0.1).noiseless
        assert not ErrorRateModel(0.0, node_rates={"Car": 0.2}).noiseless

    def test_as_array_applies_overrides(self, vehicle_hierarchy):
        model = ErrorRateModel(0.1, node_rates={"Car": 0.3})
        rates = model.as_array(vehicle_hierarchy)
        assert rates[vehicle_hierarchy.index("Car")] == 0.3
        assert rates[vehicle_hierarchy.index("Sentra")] == 0.1

    def test_as_array_rejects_unknown_node(self, vehicle_hierarchy):
        model = ErrorRateModel(0.1, node_rates={"Tesla": 0.3})
        with pytest.raises(OracleError, match="Tesla"):
            model.as_array(vehicle_hierarchy)

    def test_make_oracle_respects_node_rates(self, vehicle_hierarchy):
        model = ErrorRateModel(0.0, node_rates={"Honda": 0.49})
        oracle = model.make_oracle(
            vehicle_hierarchy, "Sentra", np.random.default_rng(1)
        )
        flips = sum(oracle.answer("Honda") for _ in range(500))
        assert 0.35 < flips / 500 < 0.6  # Honda flips near its 0.49 rate
        assert all(oracle.answer("Nissan") for _ in range(50))  # base 0.0


class TestCountingOracle:
    def test_counts_and_prices(self, vehicle_hierarchy):
        inner = ExactOracle(vehicle_hierarchy, "Sentra")
        counter = CountingOracle(inner, TableCost({}, default=2.0))
        counter.answer("Car")
        counter.answer("Nissan")
        assert counter.num_queries == 2
        assert counter.total_price == 4.0
        assert counter.transcript == [("Car", True), ("Nissan", True)]
        counter.reset_counters()
        assert counter.num_queries == 0
        assert counter.transcript == []
