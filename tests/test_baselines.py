"""Unit tests for the baseline policies: TopDown, MIGS, WIGS."""

from __future__ import annotations

import math

import pytest

from repro.core.decision_tree import build_decision_tree
from repro.core.session import search_for_target
from repro.evaluation import worst_case_cost
from repro.policies import MigsPolicy, TopDownPolicy, WigsPolicy
from repro.taxonomy.generators import balanced_tree, path_graph, star_graph

from repro.testing import make_random_dag, make_random_tree, random_distribution


ALL_BASELINES = [TopDownPolicy, MigsPolicy, WigsPolicy]


class TestSoundness:
    @pytest.mark.parametrize("factory", ALL_BASELINES)
    @pytest.mark.parametrize("seed", range(4))
    def test_identifies_every_target_tree(self, factory, seed):
        h = make_random_tree(20, seed=seed)
        policy = factory()
        for target in h.nodes:
            assert search_for_target(policy, h, target).returned == target

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    @pytest.mark.parametrize("seed", range(4))
    def test_identifies_every_target_dag(self, factory, seed):
        h = make_random_dag(20, seed=seed)
        policy = factory()
        for target in h.nodes:
            assert search_for_target(policy, h, target).returned == target


class TestTopDown:
    def test_path_graph_costs_depth_plus_one(self):
        """On a path, TopDown asks one question per level."""
        h = path_graph(8)
        policy = TopDownPolicy()
        for i in range(8):
            result = search_for_target(policy, h, f"p{i}")
            # One yes per level down, plus the final no at the child (except
            # at the deepest leaf which has no child to probe).
            expected = i + 1 if i < 7 else 7
            assert result.num_queries == expected

    def test_star_graph_worst_case_is_linear(self):
        h = star_graph(10)
        assert worst_case_cost(TopDownPolicy(), h) == 9

    def test_probe_order_is_label_hash_not_storage(self):
        h = star_graph(10)
        policy = TopDownPolicy()
        policy.reset(h)
        order = []
        while not policy.done():
            q = policy.propose()
            order.append(q)
            policy.observe(False)
        assert set(order) == {f"s{i}" for i in range(1, 10)}
        assert order != [f"s{i}" for i in range(1, 10)]  # neutralised order


class TestMigs:
    def test_cost_counts_choices_read(self):
        """A 'none of these' level charges the full choice list."""
        h = star_graph(6)  # root with 5 children
        result = search_for_target(MigsPolicy(), h, "s0")
        assert result.num_queries == 5  # read all choices, answer "none"

    def test_comparable_to_topdown_in_expectation(self):
        h = make_random_tree(60, seed=9)
        dist = random_distribution(h, 9)
        migs = build_decision_tree(MigsPolicy, h, dist).expected_cost(dist)
        topdown = build_decision_tree(TopDownPolicy, h, dist).expected_cost(dist)
        assert migs == pytest.approx(topdown, rel=0.35)

    def test_order_differs_from_topdown(self):
        h = star_graph(12)
        migs, topdown = MigsPolicy(), TopDownPolicy()
        migs.reset(h)
        topdown.reset(h)
        assert migs.propose() != topdown.propose()


class TestWigs:
    def test_balanced_tree_near_log(self):
        """Heavy-path binary search stays within a small factor of log2 n."""
        h = balanced_tree(2, 5)  # 63 nodes
        worst = worst_case_cost(WigsPolicy(), h)
        assert worst <= 3 * math.ceil(math.log2(h.n))

    def test_beats_topdown_worst_case_on_paths(self):
        h = path_graph(32)
        wigs = worst_case_cost(WigsPolicy(), h)
        topdown = worst_case_cost(TopDownPolicy(), h)
        assert wigs <= math.ceil(math.log2(32)) + 1
        assert wigs < topdown

    def test_ignores_distribution(self):
        """WIGS makes the same decisions whatever the distribution."""
        h = make_random_tree(25, seed=2)
        d1 = random_distribution(h, 1)
        d2 = random_distribution(h, 2)
        for target in h.nodes:
            r1 = search_for_target(WigsPolicy(), h, target, d1)
            r2 = search_for_target(WigsPolicy(), h, target, d2)
            assert r1.queries() == r2.queries()

    def test_decision_tree_validates_on_dag(self):
        h = make_random_dag(18, seed=4)
        tree = build_decision_tree(WigsPolicy, h)
        tree.validate()

    @pytest.mark.parametrize("seed", range(4))
    def test_worst_case_not_catastrophic_on_random_trees(self, seed):
        h = make_random_tree(40, seed=seed)
        worst = worst_case_cost(WigsPolicy(), h)
        # Tao et al.'s bound is O(log n) per heavy-path segment; allow a
        # generous constant here — the point is to rule out linear blowups.
        assert worst <= 4 * math.ceil(math.log2(h.n)) + h.height
