"""Unit tests for the evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decision_tree import build_decision_tree
from repro.core.distribution import TargetDistribution
from repro.evaluation import (
    compare_policies,
    evaluate_expected_cost,
    time_by_depth,
    worst_case_cost,
)
from repro.policies import GreedyTreePolicy, TopDownPolicy, WigsPolicy

from repro.testing import make_random_tree, random_distribution


class TestExpectedCost:
    def test_exact_matches_decision_tree(self, vehicle_hierarchy, vehicle_distribution):
        result = evaluate_expected_cost(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        assert result.method == "exact"
        assert result.expected_queries == pytest.approx(
            tree.expected_cost(vehicle_distribution)
        )
        assert result.expected_price == pytest.approx(result.expected_queries)

    def test_skips_zero_probability_targets(self, vehicle_hierarchy):
        dist = TargetDistribution({"Maxima": 0.5, "Sentra": 0.5})
        result = evaluate_expected_cost(
            GreedyTreePolicy(), vehicle_hierarchy, dist
        )
        assert result.num_targets == 2

    def test_per_target_costs(self, vehicle_hierarchy, vehicle_distribution):
        result = evaluate_expected_cost(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            keep_per_target=True,
        )
        assert set(result.per_target) == set(vehicle_hierarchy.nodes)
        assert result.per_target["Maxima"] == 1  # first greedy query

    def test_monte_carlo_close_to_exact(self):
        h = make_random_tree(50, seed=1)
        dist = random_distribution(h, 1)
        exact = evaluate_expected_cost(GreedyTreePolicy(), h, dist)
        sampled = evaluate_expected_cost(
            GreedyTreePolicy(),
            h,
            dist,
            max_targets=40,
            rng=np.random.default_rng(2),
        )
        assert sampled.method == "monte-carlo"
        assert sampled.expected_queries == pytest.approx(
            exact.expected_queries, rel=0.3
        )

    def test_monte_carlo_needs_rng(self):
        h = make_random_tree(50, seed=1)
        dist = random_distribution(h, 1)
        from repro.exceptions import SearchError

        with pytest.raises(SearchError, match="rng"):
            evaluate_expected_cost(
                GreedyTreePolicy(), h, dist, max_targets=10
            )

    def test_explicit_targets(self, vehicle_hierarchy, vehicle_distribution):
        result = evaluate_expected_cost(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            targets=["Maxima", "Maxima", "Sentra", "Sentra"],
        )
        assert result.expected_queries == pytest.approx(1.5)  # (1+1+2+2)/4


class TestComparison:
    def test_savings(self, vehicle_hierarchy, vehicle_distribution):
        comparison = compare_policies(
            [TopDownPolicy(), GreedyTreePolicy()],
            vehicle_hierarchy,
            vehicle_distribution,
        )
        assert comparison.cost_of("GreedyTree") < comparison.cost_of("TopDown")
        saving = comparison.savings_of("GreedyTree", versus="TopDown")
        assert 0 < saving < 1
        with pytest.raises(KeyError):
            comparison.cost_of("nope")

    def test_monte_carlo_is_paired(self):
        """All policies see the same sampled targets."""
        h = make_random_tree(60, seed=3)
        dist = random_distribution(h, 3)
        comparison = compare_policies(
            [WigsPolicy(), WigsPolicy()],
            h,
            dist,
            max_targets=25,
            rng=np.random.default_rng(0),
        )
        a, b = comparison.results
        assert a.expected_queries == pytest.approx(b.expected_queries)

    def test_as_row(self, vehicle_hierarchy, vehicle_distribution):
        comparison = compare_policies(
            [TopDownPolicy()],
            vehicle_hierarchy,
            vehicle_distribution,
            distribution_name="real",
        )
        row = comparison.as_row()
        assert row["Distribution"] == "real"
        assert "TopDown" in row


class TestWorstCaseAndTiming:
    def test_worst_case(self, vehicle_hierarchy, vehicle_distribution):
        worst = worst_case_cost(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        assert worst == 6  # the paper's Example 2 greedy worst case

    def test_time_by_depth_structure(self, vehicle_hierarchy, vehicle_distribution, rng):
        timing = time_by_depth(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            rng,
            per_depth=2,
        )
        assert set(timing.mean_ms) == {0, 1, 2, 3}
        assert all(ms >= 0 for ms in timing.mean_ms.values())
        assert timing.as_series() == sorted(timing.mean_ms.items())
