"""Unit tests for target distributions and the Equation-(1) rounding."""

from __future__ import annotations

import math

import pytest

from repro.core.distribution import SYNTHETIC_FAMILIES, TargetDistribution
from repro.core.hierarchy import Hierarchy
from repro.exceptions import DistributionError


class TestValidation:
    def test_normalizes_by_default(self):
        dist = TargetDistribution({"a": 2.0, "b": 2.0})
        assert dist.p("a") == pytest.approx(0.5)

    def test_unnormalized_rejected(self):
        with pytest.raises(DistributionError, match="sum"):
            TargetDistribution({"a": 0.7}, normalize=False)

    def test_negative_rejected(self):
        with pytest.raises(DistributionError, match="negative"):
            TargetDistribution({"a": -0.1, "b": 1.1})

    def test_nan_rejected(self):
        with pytest.raises(DistributionError, match="NaN"):
            TargetDistribution({"a": float("nan")})

    def test_zero_mass_rejected(self):
        with pytest.raises(DistributionError, match="zero total"):
            TargetDistribution({"a": 0.0, "b": 0.0})

    def test_empty_rejected(self):
        with pytest.raises(DistributionError, match="empty"):
            TargetDistribution({})


class TestAccessors:
    def test_unknown_node_probability_zero(self):
        dist = TargetDistribution({"a": 1.0})
        assert dist.p("zzz") == 0.0

    def test_support_excludes_zeros(self):
        dist = TargetDistribution({"a": 1.0, "b": 0.0})
        assert dist.support == {"a"}
        assert "b" in dist  # still a known node

    def test_entropy(self):
        uniform4 = TargetDistribution({i: 0.25 for i in range(4)})
        assert uniform4.entropy() == pytest.approx(2.0)
        point = TargetDistribution({"a": 1.0})
        assert point.entropy() == 0.0

    def test_total_mass(self):
        dist = TargetDistribution({"a": 0.2, "b": 0.3, "c": 0.5}, normalize=False)
        assert dist.total_mass(["a", "c"]) == pytest.approx(0.7)
        assert dist.total_mass(["missing"]) == 0.0

    def test_sampling_follows_weights(self, rng):
        dist = TargetDistribution({"a": 0.9, "b": 0.1})
        draws = dist.sample(rng, size=2000)
        share_a = draws.count("a") / 2000
        assert 0.85 < share_a < 0.95

    def test_sample_single(self, rng):
        dist = TargetDistribution({"a": 1.0})
        assert dist.sample(rng) == "a"

    def test_restricted_to(self):
        dist = TargetDistribution({"a": 0.5, "b": 0.25, "c": 0.25}, normalize=False)
        sub = dist.restricted_to(["a", "b"])
        assert sub.p("a") == pytest.approx(2 / 3)
        assert sub.p("c") == 0.0


class TestRounding:
    """Equation (1): w(u) = ceil(n^2 p(u) / max p)."""

    def test_values(self, vehicle_hierarchy, vehicle_distribution):
        weights = vehicle_distribution.rounded_weights(vehicle_hierarchy)
        n = vehicle_hierarchy.n
        by_label = dict(zip(vehicle_hierarchy.nodes, weights))
        assert by_label["Maxima"] == n * n  # the max-probability node
        assert by_label["Car"] == math.ceil(n * n * 0.02 / 0.40)

    def test_integer_and_positive_iff_support(self, vehicle_hierarchy):
        dist = TargetDistribution({"Maxima": 1.0, "Car": 0.0, "Vehicle": 0.5})
        weights = dist.rounded_weights(vehicle_hierarchy)
        by_label = dict(zip(vehicle_hierarchy.nodes, weights))
        assert weights.dtype.kind == "i"
        assert by_label["Car"] == 0
        assert by_label["Honda"] == 0  # not in the distribution at all
        assert by_label["Maxima"] > 0 and by_label["Vehicle"] > 0

    def test_ratio_preserved_up_to_rounding(self, vehicle_hierarchy):
        dist = TargetDistribution({"Maxima": 0.6, "Sentra": 0.3, "Car": 0.1})
        weights = dist.rounded_weights(vehicle_hierarchy)
        by_label = dict(zip(vehicle_hierarchy.nodes, weights))
        # ceil() distorts ratios by at most ~1/n^2 in relative terms; with
        # n = 7 the weights are 49 and 25, a 2% distortion.
        assert by_label["Maxima"] / by_label["Sentra"] == pytest.approx(2.0, rel=0.05)

    def test_requires_mass_inside_hierarchy(self, vehicle_hierarchy):
        dist = TargetDistribution({"not-a-node": 1.0})
        with pytest.raises(DistributionError, match="positive-probability"):
            dist.rounded_weights(vehicle_hierarchy)


class TestConstructors:
    def test_equal(self, vehicle_hierarchy):
        dist = TargetDistribution.equal(vehicle_hierarchy)
        assert dist.p("Car") == pytest.approx(1 / 7)

    def test_from_counts(self):
        dist = TargetDistribution.from_counts({"a": 3, "b": 1})
        assert dist.p("a") == pytest.approx(0.75)

    def test_from_counts_smoothing(self, vehicle_hierarchy):
        dist = TargetDistribution.from_counts(
            {}, hierarchy=vehicle_hierarchy, smoothing=1.0
        )
        assert dist.p("Car") == pytest.approx(1 / 7)

    def test_smoothing_needs_hierarchy(self):
        with pytest.raises(DistributionError, match="hierarchy"):
            TargetDistribution.from_counts({"a": 1}, smoothing=1.0)

    def test_negative_smoothing_rejected(self, vehicle_hierarchy):
        with pytest.raises(DistributionError, match="non-negative"):
            TargetDistribution.from_counts(
                {"Car": 1}, hierarchy=vehicle_hierarchy, smoothing=-1
            )

    @pytest.mark.parametrize("family", SYNTHETIC_FAMILIES)
    def test_synthetic_families(self, family, vehicle_hierarchy, rng):
        dist = TargetDistribution.synthetic(family, vehicle_hierarchy, rng)
        total = sum(dist.p(v) for v in vehicle_hierarchy.nodes)
        assert total == pytest.approx(1.0)

    def test_synthetic_unknown(self, vehicle_hierarchy, rng):
        with pytest.raises(DistributionError, match="unknown synthetic"):
            TargetDistribution.synthetic("pareto", vehicle_hierarchy, rng)

    def test_zipf_parameter_validated(self, vehicle_hierarchy, rng):
        with pytest.raises(DistributionError, match="exceed 1"):
            TargetDistribution.random_zipf(vehicle_hierarchy, rng, a=1.0)

    def test_zipf_skews_more_than_uniform(self, rng):
        h = Hierarchy([(f"x{i // 3}", f"x{i}") for i in range(1, 60)])
        zipf = TargetDistribution.random_zipf(h, rng, a=2.0)
        uniform = TargetDistribution.random_uniform(h, rng)
        assert zipf.entropy() < uniform.entropy()
