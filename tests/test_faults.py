"""Tests for deterministic fault injection and the resilience layer.

Four contracts:

1. **Injection mechanics** — the ``REPRO_FAULTS=1`` gate, scripted and
   seeded-random :class:`~repro.faults.FaultPlan` determinism, trace
   replay, and the typed-exception registry (``FAULT_SITES``).

2. **Resilience primitives** — :class:`~repro.faults.RetryPolicy`
   (deterministic jittered backoff) and
   :class:`~repro.faults.CircuitBreaker` (tick-counted trip ->
   cooldown -> probe -> restore).

3. **Stack behaviour under faults** — pool/stream deadlines raise typed
   :class:`~repro.exceptions.PoolTimeoutError` instead of hanging,
   injected worker kills recover bit-identically, the server's breaker
   degrades and *restores* streaming, and crash-atomic cache writes
   never leave torn files.

4. **Mini chaos soak** — seeded random fault schedules over a real
   pool + server: termination, typed errors only, completed sessions
   bit-identical to fault-free serving (the full-size soak is
   ``benchmarks/bench_faults.py``).

Every test arms its own environment (``monkeypatch.setenv``), so the
suite passes in a tier-1 run without ``REPRO_FAULTS`` set.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.analysis import schedule as _schedule
from repro.core.oracle import ExactOracle
from repro.core.session import run_search
from repro.engine import EvaluationPool, simulate_all_targets
from repro.engine.cache import EngineResultCache, result_key
from repro.exceptions import (
    AdmissionError,
    FaultError,
    FaultInjectedError,
    OracleError,
    PoolError,
    PoolTimeoutError,
    ReproError,
    ServeError,
    ServeTimeoutError,
    TransportError,
)
from repro.faults import (
    FAULT_SITES,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    FlakyOracle,
    RetryPolicy,
    maybe_inject,
    site_exception,
)
from repro.faults import inject as _inject
from repro.plan import CompiledPlan, compile_policy
from repro.plan.cache import PlanCache
from repro.policies import GreedyTreePolicy
from repro.serve import Server, ServeClient, ServeTransport, SessionRequest
from repro.testing import make_random_tree, random_distribution


@pytest.fixture
def faults_on(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "1")


def _config(n=40, seed=7):
    hierarchy = make_random_tree(n, seed=seed)
    distribution = random_distribution(hierarchy, seed)
    plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
    return plan, hierarchy, distribution


def _reference_outcomes(plan, hierarchy, targets):
    return {
        t: run_search(plan, ExactOracle(hierarchy, t), hierarchy)
        for t in targets
    }


# ----------------------------------------------------------------------
# 1. Injection mechanics
# ----------------------------------------------------------------------
class TestGate:
    def test_arming_requires_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not _inject.enabled()
        plan = FaultPlan([FaultSpec("crash", at="serve.step")])
        with pytest.raises(FaultError, match="REPRO_FAULTS=1"):
            with plan.armed():
                pass

    def test_one_plan_at_a_time(self, faults_on):
        with FaultPlan().armed():
            with pytest.raises(FaultError, match="already armed"):
                with FaultPlan().armed():
                    pass

    def test_hook_cleared_even_on_error(self, faults_on):
        plan = FaultPlan([FaultSpec("crash", at="serve.step")])
        with pytest.raises(ServeError):
            with plan.armed():
                maybe_inject("serve.step")
        assert _schedule._FAULT_HOOK is None

    def test_spec_validation(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSpec("meteor", at="serve.step")
        with pytest.raises(FaultError, match="1-based"):
            FaultSpec("crash", at="serve.step", nth=0)
        with pytest.raises(FaultError, match="rate"):
            FaultPlan.random(seed=1, rate=1.5)

    def test_disarmed_hook_costs_nothing(self):
        # With no plan armed, schedule_point is two global loads.
        assert _schedule._FAULT_HOOK is None
        maybe_inject("serve.step")  # no-op, no error


class TestTypedSites:
    def test_registry_covers_all_stack_boundaries(self):
        # Spot-check the contract the resilience layer leans on.
        assert FAULT_SITES["pool.collect"] is PoolTimeoutError
        assert FAULT_SITES["serve.submit"] is AdmissionError
        assert site_exception("serve.submit") is AdmissionError

    def test_unregistered_label_falls_back_typed(self):
        exc = site_exception("totally.adhoc")
        assert exc is FaultInjectedError
        assert issubclass(exc, ReproError)

    def test_scripted_crash_raises_site_type(self, faults_on):
        plan = FaultPlan([FaultSpec("crash", at="serve.submit")])
        with plan.armed():
            with pytest.raises(AdmissionError, match="injected fault"):
                maybe_inject("serve.submit")
        assert plan.trace == [("serve.submit", 1, "crash")]

    def test_nth_occurrence_counts(self, faults_on):
        plan = FaultPlan([FaultSpec("crash", at="oracle.answer", nth=3)])
        with plan.armed():
            maybe_inject("oracle.answer")
            maybe_inject("oracle.answer")
            with pytest.raises(OracleError):
                maybe_inject("oracle.answer")
        assert plan.counts["oracle.answer"] == 3


class TestDeterminism:
    def _drive(self, plan, crossings=300):
        with plan.armed():
            for _ in range(crossings):
                try:
                    maybe_inject("serve.step")
                except ReproError:
                    pass
        return list(plan.trace)

    def test_same_seed_same_trace(self, faults_on):
        make = lambda: FaultPlan.random(seed=42, rate=0.1, kinds=("crash",))
        assert self._drive(make()) == self._drive(make())
        assert self._drive(make())  # and some faults actually fired

    def test_different_seed_different_trace(self, faults_on):
        a = self._drive(FaultPlan.random(seed=1, rate=0.1, kinds=("crash",)))
        b = self._drive(FaultPlan.random(seed=2, rate=0.1, kinds=("crash",)))
        assert a != b

    def test_trace_replay(self, faults_on):
        recorded = self._drive(
            FaultPlan.random(seed=9, rate=0.08, kinds=("crash", "slow"))
        )
        assert recorded
        replay = FaultPlan.from_trace(recorded)
        assert self._drive(replay) == recorded

    def test_max_faults_caps_injections(self, faults_on):
        plan = FaultPlan.random(
            seed=3, rate=1.0, kinds=("crash",), max_faults=2
        )
        assert len(self._drive(plan, crossings=50)) == 2

    def test_excluded_sites_never_fire(self, faults_on):
        plan = FaultPlan.random(
            seed=3, rate=1.0, kinds=("crash",), exclude=("serve.step",)
        )
        assert self._drive(plan, crossings=50) == []

    def test_pool_kinds_skipped_without_pool(self, faults_on):
        plan = FaultPlan.random(
            seed=3, rate=1.0, kinds=("kill_worker", "stall")
        )
        assert self._drive(plan, crossings=50) == []


# ----------------------------------------------------------------------
# 2. Resilience primitives
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_deterministic_and_bounded(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=0.4, jitter=0.5, seed=11
        )
        delays = policy.delays()
        assert delays == policy.delays()
        assert len(delays) == 4
        for i, pause in enumerate(delays):
            raw = min(0.4, 0.1 * 2**i)
            assert 0.5 * raw <= pause <= raw

    def test_seed_desynchronizes(self):
        a = RetryPolicy(attempts=4, seed=1).delays()
        b = RetryPolicy(attempts=4, seed=2).delays()
        assert a != b

    def test_call_retries_then_succeeds(self):
        calls = {"n": 0}
        retried = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)
        result = policy.call(
            flaky,
            retry_on=(ValueError,),
            on_retry=lambda attempt, exc: retried.append(attempt),
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert retried == [0, 1]

    def test_call_exhausts_and_reraises(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0)

        def always():
            raise ValueError("permanent")

        with pytest.raises(ValueError, match="permanent"):
            policy.call(always, retry_on=(ValueError,))

    def test_foreign_exception_propagates_immediately(self):
        policy = RetryPolicy(attempts=5, base_delay=0.0)
        calls = {"n": 0}

        def wrong_type():
            calls["n"] += 1
            raise KeyError("not retried")

        with pytest.raises(KeyError):
            policy.call(wrong_type, retry_on=(ValueError,))
        assert calls["n"] == 1

    def test_validation(self):
        with pytest.raises(FaultError):
            RetryPolicy(attempts=0)
        with pytest.raises(FaultError):
            RetryPolicy(jitter=1.0)


class TestCircuitBreaker:
    def test_trip_cooldown_probe_restore(self):
        events = []
        breaker = CircuitBreaker(
            cooldown=2,
            on_trip=lambda: events.append("trip"),
            on_restore=lambda: events.append("restore"),
        )
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow_probe()
        breaker.tick()
        assert breaker.state == CircuitBreaker.OPEN
        breaker.tick()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow_probe() and breaker.probing
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert events == ["trip", "restore"]
        assert breaker.trips == 1 and breaker.restores == 1

    def test_failed_probe_retrips_fresh_cooldown(self):
        breaker = CircuitBreaker(cooldown=3)
        breaker.record_failure()
        for _ in range(3):
            breaker.tick()
        assert breaker.probing
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        breaker.tick()
        assert breaker.state == CircuitBreaker.OPEN  # full cooldown again

    def test_threshold_counts_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_failures_while_open_ignored(self):
        breaker = CircuitBreaker(cooldown=2)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.trips == 1
        breaker.tick()
        assert breaker.state == CircuitBreaker.OPEN  # cooldown not extended

    def test_validation(self):
        with pytest.raises(FaultError):
            CircuitBreaker(cooldown=0)
        with pytest.raises(FaultError):
            CircuitBreaker(failure_threshold=0)


# ----------------------------------------------------------------------
# 3. Stack behaviour under faults
# ----------------------------------------------------------------------
class TestPoolDeadlines:
    def test_wedged_worker_raises_typed_timeout(self):
        plan, hierarchy, _ = _config(seed=21)
        with EvaluationPool(workers=1) as pool:
            simulate_all_targets(plan, result_cache=False, pool=pool)  # warm
            # Tighten only after the warm run: under spawn, worker boot
            # itself takes longer than 0.3s of "no progress".  The
            # attribute is read per collect call, so this is the same
            # deadline the constructor argument installs.
            pool.deadline = 0.3
            pool._inject_sleep(60.0)  # the lone worker is now busy
            with pytest.raises(PoolTimeoutError) as exc_info:
                simulate_all_targets(plan, result_cache=False, pool=pool)
        message = str(exc_info.value)
        assert "no progress" in message
        assert "pid" in message and "task" in message

    def test_per_call_deadline_overrides_pool_default(self):
        plan, hierarchy, _ = _config(seed=22)
        with EvaluationPool(workers=1) as pool:  # no pool-wide deadline
            # Boot + attach before the deadlined stream opens: spawn
            # workers take longer than 0.3s to come up.
            simulate_all_targets(plan, result_cache=False, pool=pool)
            pool.publish(plan)
            with pool.stream(plan, deadline=0.3) as stream:
                stream.submit(list(hierarchy.nodes)[:5])
                stream.join()  # warm: worker attached
                pool._inject_sleep(60.0)
                stream.submit(list(hierarchy.nodes)[:5])
                give_up = time.monotonic() + 20.0
                with pytest.raises(PoolTimeoutError, match="no progress"):
                    while time.monotonic() < give_up:
                        stream.poll()
                        time.sleep(0.02)

    def test_deadline_validation(self):
        with pytest.raises(PoolError, match="deadline"):
            EvaluationPool(workers=1, deadline=-1.0)

    def test_health_tracks_worker_results(self):
        plan, hierarchy, _ = _config(seed=23)
        with EvaluationPool(workers=2) as pool:
            simulate_all_targets(plan, result_cache=False, pool=pool)
            health = pool.health()
            assert health  # at least one worker reported a result
            assert all(h.alive for h in health)
            assert sum(h.completed for h in health) > 0


class TestInjectedPoolFaults:
    def test_kill_worker_recovers_bit_identical(self, faults_on):
        plan, hierarchy, _ = _config(seed=25)
        reference = simulate_all_targets(
            plan, result_cache=False, pool=False
        )
        fault = FaultPlan([FaultSpec("kill_worker", at="pool.collect", nth=1)])
        with EvaluationPool(workers=1) as pool:
            simulate_all_targets(plan, result_cache=False, pool=pool)  # warm
            pool._inject_sleep(60.0)  # the worker is busy: the kill
            # deterministically lands before it can produce a result
            with fault.armed(pool=pool):
                result = simulate_all_targets(
                    plan, result_cache=False, pool=pool
                )
            assert fault.fired == 1
            assert pool.respawns >= 1
        assert np.array_equal(reference.queries, result.queries)
        assert np.allclose(
            reference.prices[reference.target_ix],
            result.prices[result.target_ix],
        )

    def test_segment_attack_ends_typed_not_hung(self, faults_on):
        """Vanish the plan's segment, then kill the attached worker: the
        respawned worker cannot re-attach, and the failure must surface
        as a typed PoolError within the retry budget — never a hang."""
        plan, hierarchy, _ = _config(seed=26)
        fault = FaultPlan(
            [
                FaultSpec("vanish_segment", at="stream.submit", nth=1),
                FaultSpec("kill_worker", at="stream.poll", nth=1),
            ]
        )
        with EvaluationPool(workers=1) as pool:
            with pool.stream(plan) as stream:
                stream.submit(list(hierarchy.nodes)[:6])
                stream.join()  # warm: worker attached to the segment
                pool._inject_sleep(60.0)  # wedge it so the kill lands first
                with fault.armed(pool=pool):
                    stream.submit(list(hierarchy.nodes)[:6])
                    give_up = time.monotonic() + 30.0
                    with pytest.raises(PoolError):
                        while time.monotonic() < give_up:
                            stream.poll()
                            time.sleep(0.02)
        assert {kind for _, _, kind in fault.trace} == {
            "vanish_segment", "kill_worker",
        }


class TestServerBreaker:
    def _server_pool(self, seed=31, **kw):
        plan, hierarchy, _ = _config(seed=seed)
        pool = EvaluationPool(workers=1)
        server = Server(plan, pool=pool, **kw)
        return plan, hierarchy, pool, server

    def test_degrade_then_probe_then_restore(self):
        plan, hierarchy, pool, server = self._server_pool(breaker_cooldown=2)
        targets = list(hierarchy.nodes)[:12]
        reference = _reference_outcomes(plan, hierarchy, targets)
        outcomes = {}
        with pool, server:
            group = next(iter(server._groups.values()))
            assert group.breaker is not None
            # Phase 1: healthy streaming.
            for i, t in enumerate(targets[:4]):
                server.submit(SessionRequest(t, target=t))
            outcomes.update(
                {o.session_id: o for o in server.drain(timeout=30.0)}
            )
            # Phase 2: the pool "fails" — degrade trips the breaker.
            group._degrade_to_local()
            assert server.stats.trips == 1
            assert group.stream is None
            assert group.breaker.state == CircuitBreaker.OPEN
            # Phase 3: traffic during cooldown is served locally; after
            # `cooldown` steps the probe reopens the stream, and its
            # success restores streaming.
            pending = list(targets[4:])
            give_up = time.monotonic() + 30.0
            while (
                pending or server.in_flight
            ) and time.monotonic() < give_up:
                if pending:
                    t = pending.pop()
                    server.submit(SessionRequest(t, target=t))
                for o in server.step():
                    outcomes[o.session_id] = o
            assert server.stats.restores == 1
            assert group.stream is not None
            assert group.breaker.state == CircuitBreaker.CLOSED
        assert set(outcomes) == set(targets)
        for t in targets:
            assert outcomes[t].ok, outcomes[t].error
            assert outcomes[t].result == reference[t]

    def test_pool_error_mid_collect_degrades_and_completes(self, monkeypatch):
        """The pool dies mid-tick with a batch half-collected: the group
        degrades, the batch re-runs locally, and every session still
        finishes with the fault-free numbers."""
        plan, hierarchy, pool, server = self._server_pool(
            seed=32, breaker_cooldown=10_000
        )
        targets = list(hierarchy.nodes)[:10]
        reference = _reference_outcomes(plan, hierarchy, targets)
        with pool, server:
            group = next(iter(server._groups.values()))
            for t in targets:
                server.submit(SessionRequest(t, target=t))
            group.dispatch_stream()
            assert group.tickets  # a batch is in flight
            monkeypatch.setattr(
                group.stream,
                "poll",
                lambda *a, **kw: (_ for _ in ()).throw(
                    PoolError("injected mid-tick death")
                ),
            )
            outcomes = {o.session_id: o for o in server.drain(timeout=30.0)}
            assert group.stream is None
            assert server.stats.trips == 1
        assert set(outcomes) == set(targets)
        for t in targets:
            assert outcomes[t].result == reference[t]

    def test_probe_against_closed_pool_keeps_retripping(self):
        plan, hierarchy, pool, server = self._server_pool(
            seed=33, breaker_cooldown=1
        )
        targets = list(hierarchy.nodes)[:6]
        with server:
            with pool:
                group = next(iter(server._groups.values()))
                group._degrade_to_local()
            assert pool.closed
            for t in targets:
                server.submit(SessionRequest(t, target=t))
            outcomes = {o.session_id: o for o in server.drain(timeout=30.0)}
            # Every probe found a dead pool: re-trips, never a restore.
            assert server.stats.trips >= 2
            assert server.stats.restores == 0
            assert group.stream is None
        assert all(o.ok for o in outcomes.values())

    def test_drain_timeout_raises_typed_under_stall(self):
        plan, hierarchy, pool, server = self._server_pool(seed=34)
        with pool, server:
            server.submit(SessionRequest("warm", target=hierarchy.root))
            server.drain(timeout=30.0)
            pool._inject_sleep(60.0)  # the lone worker is now wedged
            for i, t in enumerate(list(hierarchy.nodes)[:4]):
                server.submit(SessionRequest(i, target=t))
            with pytest.raises(ServeTimeoutError) as exc_info:
                server.drain(timeout=0.5)
            message = str(exc_info.value)
            assert "deadline" in message and "outstanding" in message

    def test_drain_timeout_validation(self):
        plan, hierarchy, _ = _config(seed=35)
        with Server(plan) as server:
            with pytest.raises(ServeError, match="positive"):
                server.drain(timeout=0.0)

    def test_flaky_oracle_errors_one_session_typed(self, faults_on):
        plan, hierarchy, _ = _config(seed=36)
        fault = FaultPlan([FaultSpec("crash", at="oracle.answer", nth=1)])
        targets = list(hierarchy.nodes)[:3]
        with Server(plan) as server:
            server.submit(
                SessionRequest(
                    "flaky",
                    oracle=FlakyOracle(ExactOracle(hierarchy, targets[0])),
                )
            )
            for t in targets:
                server.submit(SessionRequest(t, target=t))
            with fault.armed():
                outcomes = {
                    o.session_id: o for o in server.drain(timeout=30.0)
                }
        assert isinstance(outcomes["flaky"].error, OracleError)
        for t in targets:  # co-served sessions are untouched
            assert outcomes[t].ok


class TestCrashAtomicWrites:
    def _result(self, plan, hierarchy):
        return simulate_all_targets(
            plan, result_cache=False, pool=False
        )

    def test_result_cache_put_crash_preserves_old_entry(
        self, faults_on, tmp_path
    ):
        plan, hierarchy, _ = _config(seed=41)
        result = self._result(plan, hierarchy)
        cache = EngineResultCache(tmp_path)
        key = result_key(
            "cfg", result.target_ix, 99,
            np.ones(hierarchy.n),
        )
        cache.put(result, key)
        before = cache.path_for(key).read_bytes()
        fault = FaultPlan([FaultSpec("crash", at="cache.result_put")])
        with fault.armed():
            with pytest.raises(FaultInjectedError):
                cache.put(result, key, checked=True)
        assert cache.path_for(key).read_bytes() == before  # old entry intact
        assert not list(tmp_path.glob("*.tmp"))  # no torn temporaries
        assert cache.get(key, hierarchy) is not None

    def test_plan_save_crash_preserves_old_file(self, faults_on, tmp_path):
        plan, hierarchy, _ = _config(seed=42)
        path = tmp_path / "plan.bin"
        plan.save(path)
        before = path.read_bytes()
        fault = FaultPlan([FaultSpec("crash", at="plan.save")])
        with fault.armed():
            with pytest.raises(FaultInjectedError):
                plan.save(path)
        assert path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp*"))
        loaded = CompiledPlan.load(path)
        assert loaded.config_key == plan.config_key

    def test_plan_cache_corrupt_entry_still_degrades_to_miss(self, tmp_path):
        plan, hierarchy, _ = _config(seed=43)
        cache = PlanCache(tmp_path)
        path = cache.put(plan)
        path.write_bytes(b"scribble" * 100)
        with pytest.warns(UserWarning, match="unreadable"):
            assert cache.probe(plan.config_key) is None
        assert not path.exists()  # corrupt entry dropped

    def test_result_cache_corrupt_entry_still_degrades_to_miss(
        self, tmp_path
    ):
        plan, hierarchy, _ = _config(seed=44)
        result = self._result(plan, hierarchy)
        cache = EngineResultCache(tmp_path)
        key = result_key("cfg", result.target_ix, 99, np.ones(hierarchy.n))
        path = cache.put(result, key)
        path.write_bytes(b"scribble" * 100)
        with pytest.warns(UserWarning, match="unreadable"):
            assert cache.get(key, hierarchy) is None
        assert cache.errors == 1


# ----------------------------------------------------------------------
# 4. Mini chaos soak (the full-size one is benchmarks/bench_faults.py)
# ----------------------------------------------------------------------
class TestMiniSoak:
    def test_seeded_schedules_terminate_typed_and_bit_identical(
        self, faults_on
    ):
        plan, hierarchy, _ = _config(n=30, seed=51)
        targets = list(hierarchy.nodes)[:10]
        reference = _reference_outcomes(plan, hierarchy, targets)
        with EvaluationPool(workers=2) as pool:
            for seed in range(12):
                fault = FaultPlan.random(
                    seed,
                    rate=0.03,
                    kinds=("crash", "kill_worker", "slow"),
                    max_faults=3,
                )
                server = Server(
                    plan, pool=pool, deadline=5.0, breaker_cooldown=2
                )
                outcomes = {}
                try:
                    with fault.armed(pool=pool):
                        try:
                            for o in server.serve(
                                SessionRequest(t, target=t) for t in targets
                            ):
                                outcomes[o.session_id] = o
                        except ReproError:
                            # An injected crash escaped through the serve
                            # loop itself: typed, so the schedule is a
                            # pass — sessions it cut short are unserved.
                            pass
                finally:
                    server.close()
                for sid, outcome in outcomes.items():
                    if outcome.ok:
                        assert outcome.result == reference[sid], (
                            f"seed {seed} trace {fault.trace}"
                        )
                    else:
                        assert isinstance(outcome.error, ReproError), (
                            f"seed {seed} trace {fault.trace}"
                        )


# ----------------------------------------------------------------------
# 8. The network edge: transport.* fault sites
# ----------------------------------------------------------------------
class TestTransportFaults:
    def test_registry_has_transport_sites(self):
        assert FAULT_SITES["transport.request"] is TransportError
        assert FAULT_SITES["transport.open"] is AdmissionError
        assert FAULT_SITES["transport.drain"] is ServeTimeoutError
        assert site_exception("transport.connect") is TransportError

    def test_connect_fault_absorbed_by_retry(self, faults_on):
        """An injected dial failure is retried away by the RetryPolicy."""
        plan, hierarchy, _ = _config(n=30)
        target = list(hierarchy.nodes)[3]
        reference = run_search(
            plan, ExactOracle(hierarchy, target), hierarchy
        )
        fault = FaultPlan([FaultSpec("crash", at="transport.connect")])

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    with fault.armed():
                        client = await ServeClient.connect(
                            host,
                            port,
                            retry=RetryPolicy(attempts=2, base_delay=0.001),
                        )
                        try:
                            return await client.serve_target("s", target)
                        finally:
                            await client.close()

        result = asyncio.run(main())
        assert result == reference
        assert fault.trace == [("transport.connect", 1, "crash")]

    def test_open_fault_is_typed_and_retried(self, faults_on):
        """A crash at transport.open surfaces as AdmissionError on the
        wire, which the client's retry policy absorbs."""
        plan, hierarchy, _ = _config(n=30)
        target = list(hierarchy.nodes)[5]
        reference = run_search(
            plan, ExactOracle(hierarchy, target), hierarchy
        )
        fault = FaultPlan([FaultSpec("crash", at="transport.open")])

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    client = await ServeClient.connect(
                        host,
                        port,
                        retry=RetryPolicy(attempts=3, base_delay=0.001),
                    )
                    try:
                        with fault.armed():
                            return await client.serve_target("s", target)
                    finally:
                        await client.close()

        result = asyncio.run(main())
        assert result == reference
        assert ("transport.open", 1, "crash") in fault.trace

    def test_request_fault_trips_the_breaker(self, faults_on):
        """A transport-level failure trips the per-backend breaker:
        requests fail fast during the cooldown, then one probe restores."""
        plan, hierarchy, _ = _config(n=30)
        targets = list(hierarchy.nodes)[:4]
        fault = FaultPlan([FaultSpec("crash", at="transport.request")])
        breaker = CircuitBreaker(cooldown=3)

        async def main():
            failures = []
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    client = await ServeClient.connect(
                        host, port, breaker=breaker
                    )
                    try:
                        with fault.armed():
                            for i, t in enumerate(targets):
                                try:
                                    await client.serve_target(f"s-{i}", t)
                                except TransportError as exc:
                                    failures.append(str(exc))
                    finally:
                        await client.close()
            return failures

        failures = asyncio.run(main())
        # Request 1: injected crash (trip).  Requests 2-3: refused fast
        # while cooling down.  Request 4: half-open probe succeeds.
        assert len(failures) == 3
        assert "injected fault" in failures[0]
        assert all("circuit breaker open" in f for f in failures[1:])
        assert breaker.trips == 1
        assert breaker.restores == 1

    def test_drain_fault_is_typed(self, faults_on):
        """An injected fault in the drain window surfaces as the
        registered ServeTimeoutError, never untyped."""
        plan, _, _ = _config(n=30)
        fault = FaultPlan([FaultSpec("crash", at="transport.drain")])

        async def main():
            with Server(plan) as server:
                transport = ServeTransport(server)
                await transport.start()
                with fault.armed():
                    with pytest.raises(ServeTimeoutError, match="injected"):
                        await transport.shutdown(timeout=5.0)
                # The typed failure aborted the drain before the feed
                # closed; a clean retry finishes the shutdown.
                await transport.shutdown(timeout=5.0)

        asyncio.run(main())
