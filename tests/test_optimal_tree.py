"""Tests for optimal decision-tree extraction and qualitative stability."""

from __future__ import annotations

import pytest

from repro.core.decision_tree import build_decision_tree
from repro.core.distribution import TargetDistribution
from repro.policies import (
    GreedyTreePolicy,
    optimal_decision_tree,
    optimal_expected_cost,
)
from repro.experiments import TINY, table3
from repro.experiments.scale import scaled

from repro.testing import make_random_dag, make_random_tree, random_distribution


class TestOptimalTreeExtraction:
    def test_matches_optimal_cost(self, vehicle_hierarchy, vehicle_distribution):
        tree = optimal_decision_tree(vehicle_hierarchy, vehicle_distribution)
        tree.validate()
        assert tree.expected_cost(vehicle_distribution) == pytest.approx(
            optimal_expected_cost(vehicle_hierarchy, vehicle_distribution)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        h = make_random_dag(10, seed=seed)
        dist = random_distribution(h, seed)
        tree = optimal_decision_tree(h, dist)
        tree.validate()
        assert tree.expected_cost(dist) == pytest.approx(
            optimal_expected_cost(h, dist)
        )

    def test_never_beaten_by_greedy(self):
        for seed in range(4):
            h = make_random_tree(9, seed=seed)
            dist = random_distribution(h, seed)
            optimal = optimal_decision_tree(h, dist).expected_cost(dist)
            greedy = build_decision_tree(
                GreedyTreePolicy, h, dist
            ).expected_cost(dist)
            assert optimal <= greedy + 1e-9

    def test_with_prices(self, vehicle_hierarchy):
        from repro.core.costs import TableCost

        prices = TableCost({}, default=2.0)
        dist = TargetDistribution.equal(vehicle_hierarchy)
        tree = optimal_decision_tree(vehicle_hierarchy, dist, prices)
        assert tree.expected_price(dist, prices) == pytest.approx(
            optimal_expected_cost(vehicle_hierarchy, dist, prices)
        )


class TestQualitativeStability:
    """The paper's orderings must hold across seeds, not just seed 0."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_table3_ordering_across_seeds(self, seed):
        table = table3.run(scaled(TINY, name=f"tiny-s{seed}"), seed=seed)
        for row in table.rows:
            assert row["Greedy"] < row["WIGS"], row
            assert row["Greedy"] < row["TopDown"], row
            assert row["Greedy"] < row["MIGS"], row
