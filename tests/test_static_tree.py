"""Tests for decision-tree serialisation and precompiled policies."""

from __future__ import annotations

import json

import pytest

from repro.core.decision_tree import DecisionTree, build_decision_tree
from repro.core.session import search_for_target
from repro.exceptions import SearchError
from repro.policies import GreedyTreePolicy, GreedyDagPolicy, StaticTreePolicy

from repro.testing import make_random_dag, make_random_tree, random_distribution


class TestSerialisation:
    def test_round_trip(self, vehicle_hierarchy, vehicle_distribution):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        payload = json.loads(json.dumps(tree.to_dict()))
        back = DecisionTree.from_dict(payload, vehicle_hierarchy)
        back.validate()
        assert back.leaf_depths() == tree.leaf_depths()
        assert back.expected_cost(vehicle_distribution) == pytest.approx(
            tree.expected_cost(vehicle_distribution)
        )

    def test_round_trip_random_dags(self):
        for seed in range(3):
            h = make_random_dag(15, seed=seed)
            dist = random_distribution(h, seed)
            tree = build_decision_tree(GreedyDagPolicy, h, dist)
            back = DecisionTree.from_dict(tree.to_dict(), h)
            assert back.leaf_depths() == tree.leaf_depths()

    def test_deep_tree_serialises_iteratively(self):
        """A path hierarchy yields a deep tree; no recursion limit issues."""
        from repro.taxonomy.generators import path_graph
        from repro.policies import TopDownPolicy

        h = path_graph(300)
        tree = build_decision_tree(TopDownPolicy, h)
        back = DecisionTree.from_dict(tree.to_dict(), h)
        assert back.worst_case_cost() == tree.worst_case_cost()

    def test_malformed_payloads(self, vehicle_hierarchy):
        with pytest.raises(SearchError, match="malformed"):
            DecisionTree.from_dict({"nodes": []}, vehicle_hierarchy)
        with pytest.raises(SearchError, match="malformed"):
            DecisionTree.from_dict(
                {"root": 1, "nodes": [{"query": "x", "yes": 2, "no": 0}]},
                vehicle_hierarchy,
            )


class TestStaticTreePolicy:
    def test_identical_transcripts(self, vehicle_hierarchy, vehicle_distribution):
        """The compiled policy asks exactly the original's questions."""
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        static = StaticTreePolicy(tree)
        live = GreedyTreePolicy()
        for target in vehicle_hierarchy.nodes:
            a = search_for_target(
                static, vehicle_hierarchy, target, vehicle_distribution
            )
            b = search_for_target(
                live, vehicle_hierarchy, target, vehicle_distribution
            )
            assert a.returned == b.returned == target
            assert a.queries() == b.queries()

    def test_works_after_reload(self, vehicle_hierarchy, vehicle_distribution):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        reloaded = DecisionTree.from_dict(tree.to_dict(), vehicle_hierarchy)
        static = StaticTreePolicy(reloaded)
        for target in vehicle_hierarchy.nodes:
            result = search_for_target(static, vehicle_hierarchy, target)
            assert result.returned == target

    def test_rejects_mismatched_hierarchy(self, vehicle_hierarchy, diamond_dag):
        tree = build_decision_tree(GreedyTreePolicy, vehicle_hierarchy)
        static = StaticTreePolicy(tree)
        with pytest.raises(SearchError, match="missing"):
            static.reset(diamond_dag)

    def test_random_graphs(self):
        for seed in range(3):
            h = make_random_tree(25, seed=seed)
            dist = random_distribution(h, seed)
            static = StaticTreePolicy(
                build_decision_tree(GreedyTreePolicy, h, dist)
            )
            for target in h.nodes:
                assert (
                    search_for_target(static, h, target, dist).returned
                    == target
                )
