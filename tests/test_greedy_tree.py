"""Unit tests for GreedyTree (Algorithms 4-5, Theorem 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.oracle import ExactOracle
from repro.core.session import search_for_target
from repro.exceptions import HierarchyError
from repro.policies import GreedyNaivePolicy, GreedyTreePolicy

from repro.testing import make_random_tree, random_distribution


class TestBasics:
    def test_requires_tree(self, diamond_dag):
        policy = GreedyTreePolicy()
        with pytest.raises(HierarchyError, match="requires a tree"):
            policy.reset(diamond_dag)

    def test_first_query_is_maxima(self, vehicle_hierarchy, vehicle_distribution):
        """On Fig. 1, the middle point is Maxima (|2*0.4 - 1| = 0.2)."""
        policy = GreedyTreePolicy()
        policy.reset(vehicle_hierarchy, vehicle_distribution)
        assert policy.propose() == "Maxima"

    def test_identifies_every_target(self, vehicle_hierarchy, vehicle_distribution):
        policy = GreedyTreePolicy()
        for target in vehicle_hierarchy.nodes:
            result = search_for_target(
                policy, vehicle_hierarchy, target, vehicle_distribution
            )
            assert result.returned == target

    def test_example2_expected_cost(self, vehicle_hierarchy, vehicle_distribution):
        """The paper's Example 2: average cost 2.04."""
        from repro.core.decision_tree import build_decision_tree

        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        assert tree.expected_cost(vehicle_distribution) == pytest.approx(2.04)

    def test_zero_mass_regions_still_searchable(self, vehicle_hierarchy):
        from repro.core.distribution import TargetDistribution

        dist = TargetDistribution({"Maxima": 1.0})
        policy = GreedyTreePolicy()
        for target in vehicle_hierarchy.nodes:
            result = search_for_target(
                policy, vehicle_hierarchy, target, dist
            )
            assert result.returned == target


class TestTheorem5:
    """GreedyTree's heavy-path selection achieves the naive objective."""

    @pytest.mark.parametrize("seed", range(8))
    def test_objective_matches_naive_each_round(self, seed):
        h = make_random_tree(24, seed=seed)
        dist = random_distribution(h, seed)
        gen = np.random.default_rng(seed + 99)
        target = h.label(int(gen.integers(0, h.n)))
        oracle = ExactOracle(h, target)

        fast = GreedyTreePolicy()
        naive = GreedyNaivePolicy()
        fast.reset(h, dist)
        naive.reset(h, dist)
        rounds = 0
        while not fast.done():
            q_fast = fast.propose()
            q_naive = naive.propose()
            # Both choices are middle points: identical objective values.
            assert naive.objective_of(q_fast) == pytest.approx(
                naive.objective_of(q_naive), abs=1e-9
            )
            # Keep the two searches in lockstep on the *same* query.
            answer = oracle.answer(q_fast)
            fast.observe(answer)
            naive._pending = q_fast
            naive.observe(answer)
            rounds += 1
            assert rounds <= h.n

        assert fast.result() == target

    @pytest.mark.parametrize("seed", range(8))
    def test_middle_point_lies_on_weighted_heavy_path(self, seed):
        """Theorem 5 statement, checked directly on the initial tree."""
        h = make_random_tree(30, seed=seed)
        dist = random_distribution(h, seed)
        probs = dist.as_array(h)
        subtree = h.reach_weight_vector(probs)
        # Walk the weighted heavy path from the root.
        heavy_path = [h.root_ix]
        v = h.root_ix
        while h.children_ix(v):
            v = max(h.children_ix(v), key=lambda c: subtree[c])
            heavy_path.append(v)
        # Naive middle point over all non-root nodes.
        total = subtree[h.root_ix]
        best = min(
            (abs(2 * subtree[v] - total), v)
            for v in range(h.n)
            if v != h.root_ix
        )
        path_best = min(
            abs(2 * subtree[v] - total) for v in heavy_path[1:]
        )
        assert path_best == pytest.approx(best[0])


class TestMaintenance:
    @pytest.mark.parametrize("seed", range(5))
    def test_weights_match_recomputation(self, seed):
        """~p stays exact under the path-subtraction updates."""
        h = make_random_tree(20, seed=seed)
        dist = random_distribution(h, seed)
        gen = np.random.default_rng(seed)
        target = h.label(int(gen.integers(0, h.n)))
        oracle = ExactOracle(h, target)
        policy = GreedyTreePolicy()
        policy.reset(h, dist)
        removed: set = set()
        while not policy.done():
            query = policy.propose()
            answer = oracle.answer(query)
            policy.observe(answer)
            if not answer:
                removed |= h.descendants(query)
            # Recompute ~p of the candidate root from scratch.
            root_label = h.label(policy._root)
            alive = h.descendants(root_label) - removed
            expected = sum(dist.p(v) for v in alive)
            assert policy.subtree_weight(root_label) == pytest.approx(expected)

    def test_candidate_count(self, vehicle_hierarchy, vehicle_distribution):
        policy = GreedyTreePolicy()
        policy.reset(vehicle_hierarchy, vehicle_distribution)
        assert policy.candidate_count() == 7
        policy.propose()
        policy.observe(False)  # Maxima is not the target
        assert policy.candidate_count() == 6


class TestVariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_heap_variant_matches_scan(self, seed):
        """Footnote 3: the max-heap child index changes nothing observable."""
        h = make_random_tree(40, seed=seed)
        dist = random_distribution(h, seed)
        for target in h.nodes:
            scan = search_for_target(
                GreedyTreePolicy(), h, target, dist
            )
            heap = search_for_target(
                GreedyTreePolicy(heap_children=True), h, target, dist
            )
            assert scan.queries() == heap.queries()

    def test_rounded_variant_sound(self, vehicle_hierarchy, vehicle_distribution):
        policy = GreedyTreePolicy(rounded=True)
        for target in vehicle_hierarchy.nodes:
            result = search_for_target(
                policy, vehicle_hierarchy, target, vehicle_distribution
            )
            assert result.returned == target
