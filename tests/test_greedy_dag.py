"""Unit tests for GreedyDAG (Algorithms 6-7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.oracle import ExactOracle
from repro.core.session import search_for_target
from repro.policies import GreedyDagPolicy, GreedyNaivePolicy

from repro.testing import make_random_dag, random_distribution


class TestBasics:
    def test_identifies_every_target_on_dag(self, diamond_dag):
        policy = GreedyDagPolicy()
        for target in diamond_dag.nodes:
            result = search_for_target(policy, diamond_dag, target)
            assert result.returned == target

    def test_works_on_trees_too(self, vehicle_hierarchy, vehicle_distribution):
        policy = GreedyDagPolicy()
        for target in vehicle_hierarchy.nodes:
            result = search_for_target(
                policy, vehicle_hierarchy, target, vehicle_distribution
            )
            assert result.returned == target

    @pytest.mark.parametrize("seed", range(6))
    def test_soundness_random_dags(self, seed):
        h = make_random_dag(22, seed=seed)
        dist = random_distribution(h, seed)
        policy = GreedyDagPolicy()
        for target in h.nodes:
            result = search_for_target(policy, h, target, dist)
            assert result.returned == target

    def test_static_cache_reused_across_resets(self, diamond_dag):
        dist = random_distribution(diamond_dag, 0)
        policy = GreedyDagPolicy()
        policy.reset(diamond_dag, dist)
        cache_first = policy._static_cache
        policy.reset(diamond_dag, dist)
        assert policy._static_cache is cache_first


class TestMaintenance:
    """Algorithm 7 keeps every maintained weight exact."""

    @pytest.mark.parametrize("seed", range(6))
    def test_weights_match_recomputation_after_every_answer(self, seed):
        h = make_random_dag(20, seed=seed)
        dist = random_distribution(h, seed)
        gen = np.random.default_rng(seed + 5)
        target = h.label(int(gen.integers(0, h.n)))
        oracle = ExactOracle(h, target)
        policy = GreedyDagPolicy()
        policy.reset(h, dist)
        while not policy.done():
            query = policy.propose()
            policy.observe(oracle.answer(query))
            # Every alive candidate's maintained weight equals the weight of
            # its alive reachable set, recomputed from scratch.
            root_label = h.label(policy._root)
            for node in h.descendants(root_label):
                if policy.is_candidate(node):
                    assert policy.maintained_weight(node) == pytest.approx(
                        policy.recomputed_weight(node)
                    )
        assert policy.result() == target


class TestGreedyObjective:
    """The pruned BFS finds a true middle point (vs. exhaustive naive)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_objective_matches_naive_each_round(self, seed):
        h = make_random_dag(18, seed=seed)
        dist = random_distribution(h, seed)
        gen = np.random.default_rng(seed + 17)
        target = h.label(int(gen.integers(0, h.n)))
        oracle = ExactOracle(h, target)

        fast = GreedyDagPolicy(rounded=True)
        naive = GreedyNaivePolicy(rounded=True)
        fast.reset(h, dist)
        naive.reset(h, dist)
        while not fast.done():
            q_fast = fast.propose()
            q_naive = naive.propose()
            assert naive.objective_of(q_fast) == pytest.approx(
                naive.objective_of(q_naive), abs=1e-9
            )
            answer = oracle.answer(q_fast)
            fast.observe(answer)
            naive._pending = q_fast
            naive.observe(answer)
        assert fast.result() == target

    def test_raw_variant_sound(self, diamond_dag):
        dist = random_distribution(diamond_dag, 3)
        policy = GreedyDagPolicy(rounded=False)
        for target in diamond_dag.nodes:
            result = search_for_target(policy, diamond_dag, target, dist)
            assert result.returned == target
