"""Tests for the persistent shared-memory evaluation pool.

Contracts under test (:mod:`repro.engine.pool`):

* **bit-identity** — a warm pool walk, a repeated warm walk, and an
  overlapped multi-policy batch all reproduce the sequential engine arrays
  and ``decision_nodes`` exactly (the property suite in
  ``test_bit_identity.py`` fuzzes this across random configurations; here
  the fixed cases double as precise failure locators);
* **lifecycle** — context-manager / ``close()`` teardown unlinks every
  published segment (the session fixture in ``conftest.py`` backs this up
  globally), double close is safe, a closed pool refuses work;
* **registry** — publications are idempotent per ``config_key``,
  refcounted, LRU-evicted at ``max_plans``, and exhausting the registry
  (everything pinned) raises a clear :class:`PoolError` instead of
  unmapping plans in use;
* **failure injection** — a worker killed mid-task or while idle (holding
  the shared queue's read lock!), a corrupted shared segment, and worker
  exceptions all surface as errors or transparent recovery, never a hang;
* **spawn** — the no-fork fallback path works end to end
  (``EvaluationPool(start_method="spawn")``; CI also runs this module with
  ``REPRO_POOL_START_METHOD=spawn`` on Linux, whose default is fork).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.costs import TableCost
from repro.engine import (
    EvaluationPool,
    get_default_pool,
    resolve_pool,
    set_default_pool,
    simulate_all_targets,
    simulate_policies,
)
from repro.evaluation.comparison import compare_policies
from repro.exceptions import BudgetExceededError, PoolError
from repro.plan import compile_policy
from repro.policies import GreedyTreePolicy, make_policy
from repro.testing import make_random_dag, make_random_tree, random_distribution


def _pool_segments() -> list[str]:
    shm_dir = Path("/dev/shm")
    if not shm_dir.exists():
        return []
    return sorted(p.name for p in shm_dir.glob(f"rp_{os.getpid()}_*"))


def _assert_same_result(a, b):
    assert a.policy == b.policy
    assert a.decision_nodes == b.decision_nodes
    assert np.array_equal(a.target_ix, b.target_ix)
    assert np.array_equal(a.queries, b.queries)
    assert np.array_equal(a.prices, b.prices, equal_nan=True)


def _tree_config(n=120, seed=3):
    hierarchy = make_random_tree(n, seed=seed)
    return hierarchy, random_distribution(hierarchy, seed)


@pytest.fixture
def pool():
    with EvaluationPool(workers=2) as p:
        yield p


# ----------------------------------------------------------------------
# Bit-identity of the warm-pool walk
# ----------------------------------------------------------------------
class TestPoolParity:
    def test_tree_walk_matches_sequential(self, pool):
        hierarchy, distribution = _tree_config()
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        sequential = simulate_all_targets(
            plan, jobs=1, result_cache=False, pool=False
        )
        warm = simulate_all_targets(plan, result_cache=False, pool=pool)
        _assert_same_result(sequential, warm)
        again = simulate_all_targets(plan, result_cache=False, pool=pool)
        _assert_same_result(sequential, again)
        assert pool.walks == 2
        # One publication serves both walks: that is the point of the pool.
        assert len(pool.published_keys) == 1

    def test_dag_walk_matches_sequential(self, pool):
        hierarchy = make_random_dag(90, seed=7)
        distribution = random_distribution(hierarchy, 7)
        plan = compile_policy(
            make_policy("greedy-dag"), hierarchy, distribution
        )
        sequential = simulate_all_targets(
            plan, jobs=1, result_cache=False, pool=False
        )
        warm = simulate_all_targets(plan, result_cache=False, pool=pool)
        _assert_same_result(sequential, warm)

    def test_heterogeneous_prices(self, pool):
        hierarchy, distribution = _tree_config(seed=12)
        costs = TableCost(
            {node: 1.0 + (i % 5) for i, node in enumerate(hierarchy.nodes)}
        )
        sequential = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, costs,
            jobs=1, result_cache=False, pool=False,
        )
        warm = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution, costs,
            result_cache=False, pool=pool,
        )
        _assert_same_result(sequential, warm)

    def test_restricted_targets(self, pool):
        hierarchy, distribution = _tree_config(seed=9)
        sample = list(hierarchy.nodes[::2])
        kwargs = dict(targets=sample, max_queries=2 * hierarchy.n + 10)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        sequential = simulate_all_targets(
            plan, jobs=1, result_cache=False, pool=False, **kwargs
        )
        warm = simulate_all_targets(
            plan, result_cache=False, pool=pool, **kwargs
        )
        _assert_same_result(sequential, warm)

    def test_shared_reachability_bits_published(self, pool):
        """A pre-built bitset block pins the splitter kind to "bitset" and
        is published into the segment; workers walk bit-identically off
        the mapped (zero-copy) view."""
        hierarchy = make_random_dag(80, seed=5)
        distribution = random_distribution(hierarchy, 5)
        bits = hierarchy.reachability_bits()
        assert bits is not None
        plan = compile_policy(
            make_policy("greedy-dag"), hierarchy, distribution
        )
        sequential = simulate_all_targets(
            plan, hierarchy, jobs=1, result_cache=False, pool=False
        )
        warm = simulate_all_targets(
            plan, hierarchy, result_cache=False, pool=pool
        )
        _assert_same_result(sequential, warm)

    def test_budget_error_propagates_with_type(self, pool):
        hierarchy, distribution = _tree_config()
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        with pytest.raises(BudgetExceededError):
            simulate_all_targets(
                plan, max_queries=1, result_cache=False, pool=pool
            )
        # The pool survives the domain error and keeps serving.
        ok = simulate_all_targets(plan, result_cache=False, pool=pool)
        assert ok.num_targets == hierarchy.n


# ----------------------------------------------------------------------
# Overlapped multi-policy batches
# ----------------------------------------------------------------------
class TestOverlappedBatch:
    def test_simulate_policies_matches_singles(self, pool):
        hierarchy = make_random_dag(80, seed=4)
        distribution = random_distribution(hierarchy, 4)
        policies = [make_policy("greedy-dag"), make_policy("topdown")]
        singles = [
            simulate_all_targets(
                p, hierarchy, distribution,
                jobs=1, result_cache=False, pool=False,
            )
            for p in policies
        ]
        batch = simulate_policies(
            [make_policy("greedy-dag"), make_policy("topdown")],
            hierarchy, distribution, result_cache=False, pool=pool,
        )
        for single, overlapped in zip(singles, batch):
            _assert_same_result(single, overlapped)

    def test_replay_policy_mixes_into_batch(self, pool):
        """A non-compilable policy inside a batch takes its replay path
        while the others overlap — same numbers either way."""
        from repro.testing import ForcedReplayPolicy

        hierarchy, distribution = _tree_config(n=40, seed=6)
        singles = [
            simulate_all_targets(
                policy, hierarchy, distribution,
                jobs=1, result_cache=False, pool=False,
            )
            for policy in (make_policy("greedy-tree"), ForcedReplayPolicy())
        ]
        batch = simulate_policies(
            [make_policy("greedy-tree"), ForcedReplayPolicy()],
            hierarchy, distribution, result_cache=False, pool=pool,
        )
        assert batch[1].method == "replay"
        for single, overlapped in zip(singles, batch):
            _assert_same_result(single, overlapped)

    def test_compare_policies_overlapped_matches_serial(self, pool):
        hierarchy = make_random_dag(70, seed=8)
        distribution = random_distribution(hierarchy, 8)

        def run(**kwargs):
            return compare_policies(
                [make_policy("greedy-dag"), make_policy("topdown"),
                 make_policy("wigs")],
                hierarchy,
                distribution,
                result_cache=False,
                **kwargs,
            )

        serial = run(jobs=1, pool=False)
        overlapped = run(pool=pool)
        for a, b in zip(serial.results, overlapped.results):
            assert a.policy == b.policy
            assert a.expected_queries == b.expected_queries  # exact, not approx
            assert a.expected_price == b.expected_price
            assert a.num_targets == b.num_targets


# ----------------------------------------------------------------------
# Lifecycle and teardown
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_context_manager_unlinks_segments(self):
        hierarchy, distribution = _tree_config(n=60)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        with EvaluationPool(workers=1) as pool:
            simulate_all_targets(plan, result_cache=False, pool=pool)
            assert _pool_segments()  # resident while the pool lives
        assert not _pool_segments()
        assert pool.closed

    def test_double_close_and_use_after_close(self):
        pool = EvaluationPool(workers=1)
        pool.close()
        pool.close()  # idempotent
        hierarchy, distribution = _tree_config(n=30)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        with pytest.raises(PoolError, match="closed"):
            simulate_all_targets(plan, result_cache=False, pool=pool)
        with pytest.raises(PoolError, match="closed"):
            pool.publish(plan)

    def test_atexit_teardown_of_orphaned_pool(self, tmp_path):
        """A pool never closed explicitly must still unlink at exit."""
        script = tmp_path / "orphan.py"
        script.write_text(
            "import os\n"
            "from repro.engine import EvaluationPool, simulate_all_targets\n"
            "from repro.plan import compile_policy\n"
            "from repro.policies import GreedyTreePolicy\n"
            "from repro.testing import make_random_tree, random_distribution\n"
            "\n"
            "# __main__ guard: under the spawn start method the workers\n"
            "# re-import this module, and must not build pools of their own.\n"
            "if __name__ == '__main__':\n"
            "    h = make_random_tree(40, seed=1)\n"
            "    d = random_distribution(h, 1)\n"
            "    plan = compile_policy(GreedyTreePolicy(), h, d)\n"
            "    pool = EvaluationPool(workers=1)\n"
            "    simulate_all_targets(plan, result_cache=False, pool=pool)\n"
            "    print(os.getpid())\n"
            "    # no close(): the atexit hook must tear the pool down\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        child_pid = int(proc.stdout.strip().splitlines()[-1])
        shm_dir = Path("/dev/shm")
        if shm_dir.exists():
            leaked = list(shm_dir.glob(f"rp_{child_pid}_*"))
            assert not leaked, f"atexit left segments behind: {leaked}"
        assert "Traceback" not in proc.stderr

    def test_default_pool_resolution(self):
        pool = EvaluationPool(workers=1)
        try:
            set_default_pool(pool)
            assert get_default_pool() is pool
            assert resolve_pool(None) is pool
            assert resolve_pool(False) is None  # explicit opt-out
            other = EvaluationPool(workers=1)
            try:
                assert resolve_pool(other) is other
            finally:
                other.close()
        finally:
            set_default_pool(None)
            pool.close()
        assert resolve_pool(None) is None

    def test_explicit_jobs_opts_out_of_default_pool(self):
        """jobs=1 must mean a sequential in-process walk even when a
        default pool is installed (timing callers depend on it)."""
        hierarchy, distribution = _tree_config(n=40)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        pool = EvaluationPool(workers=1)
        try:
            set_default_pool(pool)
            result = simulate_all_targets(plan, jobs=1, result_cache=False)
            assert result.num_targets == hierarchy.n
            assert pool.walks == 0  # the pool was never consulted
        finally:
            set_default_pool(None)
            pool.close()


# ----------------------------------------------------------------------
# Registry: refcounts, pinning, eviction, exhaustion
# ----------------------------------------------------------------------
class TestRegistry:
    def _plan(self, n=40, seed=1, name="greedy-tree"):
        hierarchy = make_random_tree(n, seed=seed)
        distribution = random_distribution(hierarchy, seed)
        return compile_policy(make_policy(name), hierarchy, distribution)

    def test_publish_is_idempotent_per_key(self):
        with EvaluationPool(workers=1) as pool:
            plan = self._plan()
            key = pool.publish(plan)
            assert pool.publish(plan) == key
            assert pool.published_keys == (key,)

    def test_lru_eviction_unlinks(self):
        with EvaluationPool(workers=1, max_plans=2) as pool:
            keys = [pool.publish(self._plan(seed=s)) for s in range(3)]
            assert pool.evictions == 1
            resident = pool.published_keys
            assert keys[0] not in resident  # oldest went first
            assert set(keys[1:]) == set(resident)
            assert len(_pool_segments()) == 2

    def test_exhaustion_raises_and_release_recovers(self):
        with EvaluationPool(workers=1, max_plans=1) as pool:
            first = self._plan(seed=1)
            key = pool.publish(first, pin=True)
            with pytest.raises(PoolError, match="registry exhausted"):
                pool.publish(self._plan(seed=2))
            pool.release(key)
            pool.publish(self._plan(seed=2))  # now evicts the released plan
            assert pool.evictions == 1
            with pytest.raises(PoolError, match="not pinned"):
                pool.release(key)

    def test_eviction_respects_active_walk_then_recovers(self):
        """A plan evicted between walks is transparently republished."""
        with EvaluationPool(workers=1, max_plans=1) as pool:
            plan = self._plan(seed=1)
            sequential = simulate_all_targets(
                plan, jobs=1, result_cache=False, pool=False
            )
            simulate_all_targets(plan, result_cache=False, pool=pool)
            # Push the plan out of the registry with a different one.
            simulate_all_targets(
                self._plan(seed=2), result_cache=False, pool=pool
            )
            assert pool.evictions == 1
            again = simulate_all_targets(plan, result_cache=False, pool=pool)
            _assert_same_result(sequential, again)

    def test_uncacheable_plan_is_transient(self):
        """Plans without a content key are published per walk, never
        resident (no stable identity to evict later)."""
        from repro.core.decision_tree import build_decision_tree
        from repro.policies import StaticTreePolicy

        hierarchy, distribution = _tree_config(n=30, seed=2)
        tree = build_decision_tree(GreedyTreePolicy, hierarchy, distribution)
        plan = compile_policy(StaticTreePolicy(tree), hierarchy, distribution)
        assert plan.config_key == ""
        with EvaluationPool(workers=1) as pool:
            sequential = simulate_all_targets(
                plan, jobs=1, result_cache=False, pool=False
            )
            warm = simulate_all_targets(plan, result_cache=False, pool=pool)
            _assert_same_result(sequential, warm)
            assert pool.published_keys == ()
            with pytest.raises(PoolError, match="cannot be pinned"):
                pool.publish(plan, pin=True)


# ----------------------------------------------------------------------
# Failure injection
# ----------------------------------------------------------------------
class TestFailureInjection:
    def _plan_and_reference(self, seed=3):
        hierarchy, distribution = _tree_config(seed=seed)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        reference = simulate_all_targets(
            plan, jobs=1, result_cache=False, pool=False
        )
        return plan, reference

    def test_worker_killed_mid_task_recovers(self):
        """SIGKILL during a task: restart, resubmit, identical results."""
        plan, reference = self._plan_and_reference()
        with EvaluationPool(workers=1) as pool:
            simulate_all_targets(plan, result_cache=False, pool=pool)
            pool._inject_sleep(60.0)  # the lone worker is now busy
            time.sleep(0.3)
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            result = simulate_all_targets(plan, result_cache=False, pool=pool)
            _assert_same_result(reference, result)
            assert pool.respawns >= 1

    def test_worker_killed_while_idle_recovers(self):
        """SIGKILL while blocked in Queue.get() — the kill poisons the
        queue's shared read lock; recovery must rebuild the queues."""
        plan, reference = self._plan_and_reference(seed=4)
        with EvaluationPool(workers=2) as pool:
            simulate_all_targets(plan, result_cache=False, pool=pool)
            time.sleep(0.2)  # both workers back in Queue.get()
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            result = simulate_all_targets(plan, result_cache=False, pool=pool)
            _assert_same_result(reference, result)

    def test_corrupt_segment_raises_clear_error_and_pool_survives(self):
        plan, reference = self._plan_and_reference(seed=5)
        with EvaluationPool(workers=1) as pool:
            key = pool.publish(plan, pin=True)
            pool._registry[key].shm.buf[:64] = b"\x00" * 64
            with pytest.raises(PoolError, match="torn header|corrupt"):
                simulate_all_targets(plan, result_cache=False, pool=pool)
            # Drop the torn segment; the next walk republishes cleanly.
            pool.release(key)
            pool._unlink(pool._registry.pop(key))
            result = simulate_all_targets(plan, result_cache=False, pool=pool)
            _assert_same_result(reference, result)

    def test_vanished_segment_raises_not_hangs(self):
        """Unlinking a segment behind the pool's back is an error, not a
        deadlock (workers report the failed attach)."""
        plan, reference = self._plan_and_reference(seed=6)
        with EvaluationPool(workers=1) as pool:
            key = pool.publish(plan, pin=True)
            entry = pool._registry[key]
            entry.shm.unlink()  # simulate an external rm /dev/shm/...
            # A fresh worker cannot attach a vanished segment.
            with pytest.raises(PoolError, match="gone|corrupt"):
                simulate_all_targets(plan, result_cache=False, pool=pool)
            pool.release(key)

    def test_max_respawns_bounds_repeated_deaths(self):
        """A worker population that keeps dying ends in PoolError, not an
        infinite restart loop (and not a hang).

        Deterministic construction: the one pending task is a 60 s sleep —
        far longer than the 50 ms kill cadence — so no restarted worker can
        ever complete it and the respawn budget must run out.
        """
        import threading

        stop = threading.Event()
        with EvaluationPool(workers=1) as pool:
            pool._ensure_started()
            task_id = pool._inject_sleep(60.0)
            pending = {task_id: ("sleep", task_id, 60.0)}
            time.sleep(0.2)  # let the worker pull the sleep task

            def murder_loop():
                while not stop.is_set():
                    for proc in list(pool._procs):
                        if proc.pid and proc.is_alive():
                            try:
                                os.kill(proc.pid, signal.SIGKILL)
                            except ProcessLookupError:
                                pass
                    stop.wait(0.05)

            killer = threading.Thread(target=murder_loop, daemon=True)
            killer.start()
            try:
                with pytest.raises(PoolError, match="giving up"):
                    pool._collect(pending, {task_id: lambda payload: None})
            finally:
                stop.set()
                killer.join(5.0)

    def test_error_marshalling_preserves_domain_types(self):
        """Worker exceptions keep their type when they are this library's
        own (walk parity), everything else wraps into PoolError."""
        import pickle

        exc = EvaluationPool._as_exception(
            pickle.dumps(BudgetExceededError("boom"))
        )
        assert isinstance(exc, BudgetExceededError)
        wrapped = EvaluationPool._as_exception(pickle.dumps(ValueError("x")))
        assert isinstance(wrapped, PoolError)
        assert "ValueError" in str(wrapped)
        plain = EvaluationPool._as_exception("worker exploded")
        assert isinstance(plain, PoolError)


# ----------------------------------------------------------------------
# Spawn start method (the no-fork fallback)
# ----------------------------------------------------------------------
class TestSpawnStartMethod:
    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_parity(self):
        hierarchy, distribution = _tree_config(n=80, seed=10)
        plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
        sequential = simulate_all_targets(
            plan, jobs=1, result_cache=False, pool=False
        )
        with EvaluationPool(workers=2, start_method="spawn") as pool:
            assert pool.start_method == "spawn"
            warm = simulate_all_targets(plan, result_cache=False, pool=pool)
            _assert_same_result(sequential, warm)
            again = simulate_all_targets(plan, result_cache=False, pool=pool)
            _assert_same_result(sequential, again)

    def test_env_start_method_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_START_METHOD", "spawn")
        pool = EvaluationPool(workers=1)
        try:
            assert pool.start_method == "spawn"
        finally:
            pool.close()
