"""The deterministic-schedule explorer (``repro.analysis.schedule``).

Four layers:

1. **Explorer mechanics** on toy scenarios — the REPRO_SCHEDULE gate,
   DFS determinism, truncation, teardown-always-runs, replay divergence.
2. **The injected lost-release race** — a pin/release counter with a
   deliberate read-modify-write window.  DFS must find it and produce a
   deterministic decision trace; replaying that trace must reproduce the
   failure; seeded PCT must find it too and be reproducible by seed; the
   atomically-fixed variant must survive full exploration.
3. **Real pool code under the virtual scheduler** — an
   :class:`~repro.engine.EvaluationPool` subclass swaps the
   multiprocessing queues/processes for deterministic in-process fakes
   (via the ``_new_queue``/``_spawn_worker`` seams), so registry
   evict-vs-pin and worker-death-during-``PlanStream.poll`` run the real
   pool logic, interleaved at its ``schedule_point`` sites.
4. **Real server code** — drain racing a late admission.
"""

from __future__ import annotations

import queue as queue_mod
import re
from collections import deque

import numpy as np
import pytest

from repro.analysis import schedule as schedule_mod
from repro.analysis.schedule import (
    Scenario,
    enabled,
    explore,
    replay,
    schedule_point,
)
from repro.engine import EvaluationPool
from repro.engine.pool import _worker_main
from repro.exceptions import ScheduleError
from repro.plan import compile_policy
from repro.policies import GreedyNaivePolicy, GreedyTreePolicy
from repro.serve import Server, SessionRequest


@pytest.fixture
def scheduling(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE", "1")


def _decisions_of(error: ScheduleError) -> str:
    match = re.search(r"decisions=\[([\d,]*)\]", str(error))
    assert match, f"no decision trace in: {error}"
    return match.group(1)


# ----------------------------------------------------------------------
# The injected lost-release race
# ----------------------------------------------------------------------
class BrokenPins:
    """A refcount with a deliberate read-modify-write window.

    ``schedule_point`` sits between the read and the write, so two tasks
    interleaved exactly there lose one update — the classic lost-release
    shape the explorer exists to catch.
    """

    def __init__(self, atomic: bool = False) -> None:
        self.pins = 0
        self._atomic = atomic

    def pin(self) -> None:
        if self._atomic:
            schedule_point("pins.pin")
            self.pins += 1
            return
        held = self.pins
        schedule_point("pins.pin")
        self.pins = held + 1

    def release(self) -> None:
        if self._atomic:
            schedule_point("pins.release")
            self.pins -= 1
            return
        held = self.pins
        schedule_point("pins.release")
        self.pins = held - 1


def _pins_scenario(atomic: bool = False):
    def factory() -> Scenario:
        counter = BrokenPins(atomic)

        def holder_a() -> None:
            counter.pin()
            counter.release()

        def holder_b() -> None:
            counter.pin()
            counter.release()

        def invariant() -> None:
            assert counter.pins == 0, f"leaked/lost pins: {counter.pins}"

        return Scenario(
            tasks={"a": holder_a, "b": holder_b}, invariant=invariant
        )

    return factory


# ----------------------------------------------------------------------
# Gate and mechanics
# ----------------------------------------------------------------------
class TestGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULE", raising=False)
        assert not enabled()
        schedule_point("noop")  # must be a silent no-op when idle
        with pytest.raises(ScheduleError, match="REPRO_SCHEDULE=1"):
            explore(_pins_scenario())
        with pytest.raises(ScheduleError, match="REPRO_SCHEDULE=1"):
            replay(_pins_scenario(), [0])

    def test_enabled_reads_env_at_call_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE", "1")
        assert enabled()
        monkeypatch.setenv("REPRO_SCHEDULE", "0")
        assert not enabled()


class TestMechanics:
    def test_single_task_runs_to_completion(self, scheduling):
        log: list[str] = []

        def factory() -> Scenario:
            log.clear()

            def only() -> None:
                log.append("a")
                schedule_point("mid")
                log.append("b")

            return Scenario(tasks={"only": only})

        report = explore(factory, mode="dfs", max_schedules=10)
        assert report.schedules == 1  # one task -> exactly one schedule
        assert log == ["a", "b"]

    def test_dfs_covers_both_orders_of_two_tasks(self, scheduling):
        orders: set[tuple[str, ...]] = set()

        def factory() -> Scenario:
            ran: list[str] = []

            def first() -> None:
                ran.append("first")

            def second() -> None:
                ran.append("second")

            return Scenario(
                tasks={"first": first, "second": second},
                invariant=lambda: orders.add(tuple(ran)),
            )

        explore(factory, mode="dfs", max_schedules=50)
        assert ("first", "second") in orders
        assert ("second", "first") in orders

    def test_truncation_bounds_nonterminating_tasks(self, scheduling):
        def factory() -> Scenario:
            def spinner() -> None:
                while True:
                    schedule_point("spin")

            return Scenario(
                tasks={"spin": spinner},
                invariant=lambda: pytest.fail(
                    "invariant must not run on truncated schedules"
                ),
            )

        report = explore(factory, mode="dfs", max_schedules=3, max_steps=25)
        assert report.truncated == report.schedules > 0

    def test_teardown_runs_even_when_schedule_fails(self, scheduling):
        torn: list[bool] = []

        def factory() -> Scenario:
            def boom() -> None:
                raise RuntimeError("task exploded")

            return Scenario(
                tasks={"boom": boom}, teardown=lambda: torn.append(True)
            )

        with pytest.raises(ScheduleError, match="task exploded"):
            explore(factory, mode="dfs", max_schedules=5)
        assert torn == [True]

    def test_replay_divergence_is_loud(self, scheduling):
        with pytest.raises(ScheduleError, match="diverged"):
            replay(_pins_scenario(), [7])

    def test_blocked_task_hits_watchdog(self, scheduling, monkeypatch):
        import threading

        monkeypatch.setattr(schedule_mod, "_WATCHDOG_SECONDS", 0.4)
        forever = threading.Event()

        def factory() -> Scenario:
            return Scenario(tasks={"stuck": forever.wait})

        with pytest.raises(ScheduleError, match="blocked outside"):
            explore(factory, mode="dfs", max_schedules=1)
        forever.set()  # unblock the leaked daemon thread

    def test_unknown_mode_rejected(self, scheduling):
        with pytest.raises(ScheduleError, match="unknown exploration mode"):
            explore(_pins_scenario(), mode="bfs")


# ----------------------------------------------------------------------
# Injected race: find, trace, replay, fix
# ----------------------------------------------------------------------
class TestLostReleaseRace:
    def test_dfs_finds_race_with_deterministic_trace(self, scheduling):
        with pytest.raises(ScheduleError, match="invariant violated") as one:
            explore(_pins_scenario(), mode="dfs", max_schedules=500)
        with pytest.raises(ScheduleError, match="invariant violated") as two:
            explore(_pins_scenario(), mode="dfs", max_schedules=500)
        # Systematic exploration: same code, same first counterexample.
        assert _decisions_of(one.value) == _decisions_of(two.value)

    def test_failing_trace_replays(self, scheduling):
        with pytest.raises(ScheduleError) as caught:
            explore(_pins_scenario(), mode="dfs", max_schedules=500)
        trace = _decisions_of(caught.value)
        with pytest.raises(ScheduleError, match="invariant violated"):
            replay(_pins_scenario(), trace)

    def test_pct_finds_race_and_reports_seed(self, scheduling):
        with pytest.raises(ScheduleError) as caught:
            explore(_pins_scenario(), mode="pct", max_schedules=60, seed=7)
        assert "seed=7" in str(caught.value)
        # The same seed walks the same schedules: identical counterexample.
        with pytest.raises(ScheduleError) as again:
            explore(_pins_scenario(), mode="pct", max_schedules=60, seed=7)
        assert _decisions_of(caught.value) == _decisions_of(again.value)
        # And the printed trace replays without the seed.
        with pytest.raises(ScheduleError, match="invariant violated"):
            replay(_pins_scenario(), _decisions_of(caught.value))

    def test_atomic_fix_survives_exploration(self, scheduling):
        report = explore(
            _pins_scenario(atomic=True), mode="dfs", max_schedules=500
        )
        assert report.schedules > 1  # interleavings were actually explored
        report = explore(
            _pins_scenario(atomic=True), mode="pct", max_schedules=60, seed=7
        )
        assert report.schedules == 60


# ----------------------------------------------------------------------
# Real pool/server code under the virtual scheduler
# ----------------------------------------------------------------------
class _FakeProc:
    """Stands in for a worker process; 'dies' by flipping a flag."""

    def __init__(self) -> None:
        self.alive = True

    def is_alive(self) -> bool:
        return self.alive

    def terminate(self) -> None:
        self.alive = False

    kill = terminate

    def join(self, timeout=None) -> None:
        return None


class _LocalQueue:
    """Deterministic drop-in for the pool's multiprocessing queues."""

    def __init__(self) -> None:
        self._items: deque = deque()

    def put(self, item) -> None:
        self._items.append(item)

    def get_nowait(self):
        if not self._items:
            raise queue_mod.Empty
        return self._items.popleft()

    def get(self, timeout=None):
        return self.get_nowait()

    def close(self) -> None:
        return None

    def cancel_join_thread(self) -> None:
        return None


class _OneShot:
    """Adapts a _LocalQueue for ``_worker_loop``: empty means shut down."""

    def __init__(self, inner: _LocalQueue) -> None:
        self._inner = inner

    def get(self):
        try:
            item = self._inner.get_nowait()
        except queue_mod.Empty:
            return None  # the worker loop's shutdown sentinel
        return item if item is not None else self.get()


class VirtualPool(EvaluationPool):
    """The real pool with its process/queue seams replaced.

    Registry, streams, restart and resubmission logic are all the real
    code; only the workers are gone — a test task runs the real
    ``_worker_main`` loop in-process to serve whatever is queued.
    """

    def _new_queue(self):
        return _LocalQueue()

    def _spawn_worker(self) -> None:
        self._procs.append(_FakeProc())

    def serve_queued(self) -> None:
        """Run the real worker loop over everything currently queued."""
        _worker_main(_OneShot(self._tasks), self._results)


@pytest.fixture
def tiny_plan(vehicle_hierarchy):
    return compile_policy(GreedyTreePolicy(), vehicle_hierarchy)


class TestRealPoolSchedules:
    def test_registry_evict_vs_pin(self, scheduling, tiny_plan):
        """LRU eviction interleaved with a pin/release pair at every
        boundary the pool exposes: no interleaving may corrupt refcounts,
        evict a pinned plan, or leak a pin."""
        hierarchy = tiny_plan.hierarchy
        churn = [
            compile_policy(GreedyNaivePolicy(), hierarchy),
            compile_policy(GreedyNaivePolicy(rounded=True), hierarchy),
        ]

        def factory() -> Scenario:
            pool = VirtualPool(workers=1, max_plans=2)

            def pinner() -> None:
                key = pool.publish(tiny_plan, pin=True)
                pool.release(key)

            def churner() -> None:
                # Two distinct plans on a 2-slot registry: the second
                # publish must evict — around a pin at every boundary.
                pool.publish(churn[0])
                pool.publish(churn[1])

            def invariant() -> None:
                assert all(
                    e.pins == 0 for e in pool._registry.values()
                ), "a pin leaked past its release"
                assert len(pool._registry) <= pool.max_plans

            return Scenario(
                tasks={"pinner": pinner, "churner": churner},
                invariant=invariant,
                teardown=pool.close,
            )

        report = explore(factory, mode="dfs", max_schedules=300)
        assert report.truncated == 0
        assert report.schedules > 1

    def test_worker_death_during_stream_poll(self, scheduling, tiny_plan):
        """A worker dying at any point around submit/poll must never lose
        or duplicate a stream batch: the pool restarts, resubmits, and
        the batch arrives exactly once with correct data."""
        hierarchy = tiny_plan.hierarchy
        targets = np.arange(hierarchy.n, dtype=np.int64)[:4]

        def factory() -> Scenario:
            pool = VirtualPool(workers=1, max_plans=2)
            stream = pool.stream(tiny_plan, hierarchy)
            batches: list = []

            def driver() -> None:
                ticket = stream.submit(targets)
                for _ in range(6):  # bounded: recovery needs few rounds
                    pool.serve_queued()
                    batches.extend(stream.poll(raise_errors=False))
                    if batches:
                        break
                assert batches, "stream batch never arrived"
                assert batches[0].ticket == ticket

            def chaos() -> None:
                # A real mid-walk death: the worker has taken the task
                # off the queue (steal it) but never produced a result
                # (kill it).  Recovery must restart + resubmit.
                schedule_point("test.kill_worker")
                while True:
                    try:
                        pool._tasks.get_nowait()
                    except queue_mod.Empty:
                        break
                for proc in pool._procs:
                    proc.alive = False

            def invariant() -> None:
                assert len(batches) == 1, f"{len(batches)} deliveries"
                done = batches[0]
                assert done.ok, f"batch failed: {done.error}"
                np.testing.assert_array_equal(np.sort(done.target_ix), targets)
                assert not stream._pending

            def teardown() -> None:
                stream.close()
                pool.close()

            return Scenario(
                tasks={"driver": driver, "chaos": chaos},
                invariant=invariant,
                teardown=teardown,
            )

        report = explore(factory, mode="dfs", max_schedules=200)
        assert report.truncated == 0
        assert report.schedules > 1

    def test_server_drain_vs_late_admission(self, scheduling, tiny_plan):
        """A submission landing mid-drain is either caught by that drain
        or remains cleanly queued/in-flight for the next one — never
        lost, never double-served."""
        hierarchy = tiny_plan.hierarchy
        early = [
            SessionRequest(f"early-{i}", target=hierarchy.nodes[i])
            for i in range(1, 3)
        ]
        late = SessionRequest("late", target=hierarchy.nodes[3])

        def factory() -> Scenario:
            server = Server(tiny_plan, max_sessions=2)
            outcomes: list = []
            for request in early:
                server.submit(request)

            def drainer() -> None:
                outcomes.extend(server.drain())

            def late_submitter() -> None:
                server.submit(late)

            def teardown() -> None:
                # Teardown runs before the invariant: catch a straggler
                # the drainer missed, then close.
                outcomes.extend(server.drain())
                server.close()

            def invariant() -> None:
                served = sorted(o.session_id for o in outcomes)
                assert served == ["early-1", "early-2", "late"]
                assert all(o.ok for o in outcomes)

            return Scenario(
                tasks={"drainer": drainer, "late": late_submitter},
                invariant=invariant,
                teardown=teardown,
            )

        report = explore(factory, mode="dfs", max_schedules=150)
        assert report.truncated == 0
        assert report.schedules > 1
