"""Unit tests for online distribution learning and labelling simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DistributionError, SearchError
from repro.online import (
    EmpiricalLearner,
    average_runs,
    simulate_online_labeling,
)
from repro.policies import GreedyTreePolicy
from repro.taxonomy import Catalog, amazon_like

from repro.testing import make_random_tree


class TestLearner:
    def test_starts_uniform(self, vehicle_hierarchy):
        learner = EmpiricalLearner(vehicle_hierarchy)
        dist = learner.snapshot()
        assert dist.p("Car") == pytest.approx(1 / 7)

    def test_counts_accumulate(self, vehicle_hierarchy):
        learner = EmpiricalLearner(vehicle_hierarchy, smoothing=1.0)
        for _ in range(10):
            learner.observe("Maxima")
        assert learner.count("Maxima") == 10
        assert learner.num_observed == 10
        dist = learner.snapshot()
        assert dist.p("Maxima") == pytest.approx(11 / 17)

    def test_converges_to_truth(self, vehicle_hierarchy, rng):
        learner = EmpiricalLearner(vehicle_hierarchy, smoothing=0.5)
        for _ in range(5000):
            learner.observe("Maxima" if rng.random() < 0.7 else "Sentra")
        dist = learner.snapshot()
        assert dist.p("Maxima") == pytest.approx(0.7, abs=0.03)

    def test_rejects_unknown_category(self, vehicle_hierarchy):
        learner = EmpiricalLearner(vehicle_hierarchy)
        with pytest.raises(DistributionError):
            learner.observe("Tesla")

    def test_rejects_zero_smoothing(self, vehicle_hierarchy):
        with pytest.raises(DistributionError):
            EmpiricalLearner(vehicle_hierarchy, smoothing=0.0)


class TestSimulation:
    def test_blocks_and_correctness(self, vehicle_hierarchy, rng):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 30, "Sentra": 20})
        stream = catalog.stream(rng)
        result = simulate_online_labeling(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            stream,
            block_size=10,
        )
        assert len(result.block_costs) == 5
        assert result.total_objects == 50
        assert all(c > 0 for c in result.block_costs)

    def test_partial_last_block(self, vehicle_hierarchy, rng):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 7})
        result = simulate_online_labeling(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            catalog.stream(rng),
            block_size=5,
        )
        assert len(result.block_costs) == 2
        assert result.block_sizes == (5, 2)

    def test_overall_cost_weights_blocks_by_object_count(self):
        """The trailing partial block must count per *object*, not per
        block: 7 objects in blocks of 5 average over 7 objects, never as
        an unweighted mean of the two block averages."""
        from repro.online.simulate import OnlineRunResult

        result = OnlineRunResult(
            policy="p",
            block_size=5,
            block_costs=(2.0, 10.0),  # 5 objects at 2.0, 2 objects at 10.0
            total_objects=7,
        )
        assert result.overall_cost == pytest.approx((5 * 2.0 + 2 * 10.0) / 7)
        # An exact multiple keeps the plain mean.
        full = OnlineRunResult(
            policy="p",
            block_size=5,
            block_costs=(2.0, 10.0),
            total_objects=10,
        )
        assert full.block_sizes == (5, 5)
        assert full.overall_cost == pytest.approx(6.0)

    def test_overall_cost_equals_total_queries_per_object(
        self, vehicle_hierarchy, rng
    ):
        """End to end: overall_cost == (sum of all queries) / objects."""
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 9, "Sentra": 4})
        result = simulate_online_labeling(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            catalog.stream(rng),
            block_size=5,
        )
        total = sum(
            s * c for s, c in zip(result.block_sizes, result.block_costs)
        )
        assert result.overall_cost == pytest.approx(total / 13)

    def test_validation(self, vehicle_hierarchy):
        with pytest.raises(SearchError):
            simulate_online_labeling(
                GreedyTreePolicy(), vehicle_hierarchy, [], block_size=0
            )
        with pytest.raises(SearchError):
            simulate_online_labeling(
                GreedyTreePolicy(),
                vehicle_hierarchy,
                [],
                block_size=5,
                refresh_every=0,
            )

    def test_learning_reduces_cost(self):
        """The Fig. 4 effect: later blocks are cheaper than early ones."""
        h = amazon_like(300, seed=3)
        rng = np.random.default_rng(4)
        # A very skewed corpus: learning it matters.
        nodes = list(h.nodes)
        counts = {nodes[10]: 800, nodes[40]: 150, nodes[70]: 50}
        catalog = Catalog(h, counts)
        result = simulate_online_labeling(
            GreedyTreePolicy(), h, catalog.stream(rng), block_size=100
        )
        assert result.block_costs[-1] < result.block_costs[0]

    def test_refresh_every_changes_little(self, rng):
        h = make_random_tree(60, seed=8)
        counts = {v: 3 for v in list(h.nodes)[:30]}
        catalog = Catalog(h, counts)
        stream = catalog.stream(rng)
        every = simulate_online_labeling(
            GreedyTreePolicy(), h, stream, block_size=30, refresh_every=1
        )
        batched = simulate_online_labeling(
            GreedyTreePolicy(), h, stream, block_size=30, refresh_every=10
        )
        assert every.overall_cost == pytest.approx(
            batched.overall_cost, rel=0.25
        )


class TestAverageRuns:
    def test_averages_aligned_blocks(self, vehicle_hierarchy, rng):
        catalog = Catalog(vehicle_hierarchy, {"Maxima": 30, "Sentra": 30})
        runs = [
            simulate_online_labeling(
                GreedyTreePolicy(),
                vehicle_hierarchy,
                catalog.stream(np.random.default_rng(i)),
                block_size=20,
            )
            for i in range(3)
        ]
        curve = average_runs(runs)
        assert len(curve) == 3
        for i, value in enumerate(curve):
            assert value == pytest.approx(
                sum(r.block_costs[i] for r in runs) / 3
            )

    def test_empty_rejected(self):
        with pytest.raises(SearchError):
            average_runs([])
