"""Tests for the vectorized multi-session simulation engine.

The contract under test: :func:`repro.engine.simulate_all_targets` produces
*exactly* the query counts and total prices of the per-target ``run_search``
loop — for every registry policy, on the Fig. 1 vehicle hierarchy, random
trees, and random DAGs — while proposing at each decision point only once
for policies with native undo support (compiled to a plan and walked on
flat arrays).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import UnitCost, random_costs
from repro.core.decision_tree import build_decision_tree
from repro.core.oracle import ExactOracle
from repro.core.session import run_search
from repro.engine import VectorPolicy, is_vector_policy, simulate_all_targets
from repro.exceptions import PolicyError, SearchError
from repro.policies import (
    GreedyTreePolicy,
    StaticTreePolicy,
    available_policies,
    make_policy,
)
from repro.testing import (
    make_random_dag,
    make_random_tree,
    random_distribution,
)

#: Policies that must take the one-pass compiled-plan walk.  Every registry
#: policy journals exact undo now — the seeded random baseline snapshots its
#: generator state alongside the candidate-graph journal — so the whole
#: registry compiles via the fast undo-DFS; the transcript-replay fallback
#: is covered by ``repro.testing.ForcedReplayPolicy`` below.
PLAN_POLICIES = (
    "topdown",
    "random",
    "migs",
    "wigs",
    "greedy-tree",
    "greedy-dag",
    "greedy-naive",
    "cost-greedy",
)

TREE_ONLY = {"greedy-tree"}


def _assert_parity(policy, hierarchy, distribution, cost_model=None):
    """Engine arrays must equal per-target run_search, target by target."""
    engine = simulate_all_targets(policy, hierarchy, distribution, cost_model)
    for target in hierarchy.nodes:
        reference = run_search(
            policy,
            ExactOracle(hierarchy, target),
            hierarchy,
            distribution,
            cost_model,
        )
        assert engine.query_count(target) == reference.num_queries, (
            policy.name,
            target,
        )
        assert engine.total_price(target) == pytest.approx(
            reference.total_price, abs=1e-12
        )
    return engine


class TestRegistryParityVehicle:
    @pytest.mark.parametrize("name", available_policies())
    def test_vehicle(self, name, vehicle_hierarchy, vehicle_distribution):
        policy = make_policy(name)
        engine = _assert_parity(
            policy, vehicle_hierarchy, vehicle_distribution
        )
        expected = "plan" if name in PLAN_POLICIES else "replay"
        assert engine.method == expected


class TestForcedReplayFallback:
    """The transcript-replay adapter stays alive even though no registry
    policy needs it anymore (all journal exact undo, Random included)."""

    @pytest.mark.parametrize("seed", range(2))
    def test_forced_replay_matches_undo_path(self, seed):
        from repro.testing import ForcedReplayPolicy
        from repro.policies import RandomPolicy

        hierarchy = make_random_tree(30, seed=seed)
        distribution = random_distribution(hierarchy, seed)
        replayed = _assert_parity(
            ForcedReplayPolicy(seed=seed), hierarchy, distribution
        )
        assert replayed.method == "replay"
        # Same decisions as the undo-journaled Random — the two execution
        # paths must agree target by target.
        compiled = simulate_all_targets(
            RandomPolicy(seed=seed), hierarchy, distribution
        )
        assert compiled.method == "plan"
        assert np.array_equal(replayed.queries, compiled.queries)

    def test_random_compiles_via_undo_dfs(self, vehicle_hierarchy):
        from repro.policies import RandomPolicy

        policy = RandomPolicy(seed=3)
        assert policy.supports_undo
        engine = simulate_all_targets(policy, vehicle_hierarchy)
        assert engine.method == "plan"


class TestRegistryParityRandomGraphs:
    @pytest.mark.parametrize("name", available_policies())
    @pytest.mark.parametrize("seed", range(3))
    def test_random_tree(self, name, seed):
        hierarchy = make_random_tree(30, seed=seed)
        distribution = random_distribution(hierarchy, seed)
        _assert_parity(make_policy(name), hierarchy, distribution)

    @pytest.mark.parametrize(
        "name", [n for n in available_policies() if n not in TREE_ONLY]
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_random_dag(self, name, seed):
        hierarchy = make_random_dag(26, seed=seed)
        distribution = random_distribution(hierarchy, seed + 50)
        _assert_parity(make_policy(name), hierarchy, distribution)

    @pytest.mark.parametrize("name", ["greedy-tree", "wigs", "cost-greedy"])
    def test_heterogeneous_prices(self, name):
        hierarchy = make_random_tree(25, seed=4)
        distribution = random_distribution(hierarchy, 4)
        costs = random_costs(hierarchy, np.random.default_rng(4))
        _assert_parity(make_policy(name), hierarchy, distribution, costs)


class TestStaticTree:
    def test_compiled_policy_is_vector(self, vehicle_hierarchy, vehicle_distribution):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        policy = StaticTreePolicy(tree)
        engine = _assert_parity(
            policy, vehicle_hierarchy, vehicle_distribution
        )
        assert engine.method == "plan"
        # The compiled tree replays the compiled policy's exact behaviour.
        direct = simulate_all_targets(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        assert np.array_equal(engine.queries, direct.queries)


class TestEngineResult:
    def test_expected_cost_matches_decision_tree(
        self, vehicle_hierarchy, vehicle_distribution
    ):
        engine = simulate_all_targets(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        assert engine.expected_queries(vehicle_distribution) == pytest.approx(
            tree.expected_cost(vehicle_distribution)
        )
        assert engine.expected_price(vehicle_distribution) == pytest.approx(
            tree.expected_price(vehicle_distribution, UnitCost())
        )
        assert engine.worst_case() == tree.worst_case_cost()
        assert engine.per_target() == tree.leaf_depths()
        assert engine.num_targets == vehicle_hierarchy.n

    def test_restricted_targets_prune(self, vehicle_hierarchy, vehicle_distribution):
        engine = simulate_all_targets(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            targets=["Maxima", "Sentra", "Maxima"],
        )
        assert engine.num_targets == 2  # duplicates collapse
        assert engine.query_count("Maxima") == 1
        with pytest.raises(SearchError, match="not simulated"):
            engine.query_count("Honda")

    def test_unknown_target_rejected(self, vehicle_hierarchy, vehicle_distribution):
        from repro.exceptions import HierarchyError

        with pytest.raises(HierarchyError):
            simulate_all_targets(
                GreedyTreePolicy(),
                vehicle_hierarchy,
                vehicle_distribution,
                targets=["NotANode"],
            )

    def test_decision_nodes_counted_once(self):
        """The vector walk visits each distinct question exactly once."""
        hierarchy = make_random_tree(60, seed=8)
        distribution = random_distribution(hierarchy, 8)
        engine = simulate_all_targets(
            GreedyTreePolicy(), hierarchy, distribution
        )
        tree = build_decision_tree(
            GreedyTreePolicy, hierarchy, distribution
        )
        assert engine.decision_nodes == tree.num_questions()


class TestUndoProtocol:
    def test_vector_policy_protocol(self):
        from repro.testing import ForcedReplayPolicy

        policy = GreedyTreePolicy()
        assert isinstance(policy, VectorPolicy)
        assert is_vector_policy(policy)
        assert is_vector_policy(make_policy("random"))
        assert not is_vector_policy(ForcedReplayPolicy())

    def test_undo_restores_exact_state(self):
        hierarchy = make_random_tree(20, seed=1)
        distribution = random_distribution(hierarchy, 1)
        policy = GreedyTreePolicy()
        policy.enable_undo(True)
        policy.reset(hierarchy, distribution)
        query = policy.propose()
        before = (
            list(policy._tilde_p),
            list(policy._size),
            policy._root,
            set(policy._removed),
        )
        policy.observe(False)
        policy.undo()
        assert policy.propose() == query
        after = (
            list(policy._tilde_p),
            list(policy._size),
            policy._root,
            set(policy._removed),
        )
        assert before == after  # bit-exact, not approximate

    def test_undo_without_journal_raises(self):
        hierarchy = make_random_tree(10, seed=2)
        policy = GreedyTreePolicy()
        policy.reset(hierarchy, random_distribution(hierarchy, 2))
        with pytest.raises(PolicyError, match="undo"):
            policy.undo()

    def test_enable_undo_rejected_without_support(self):
        from repro.testing import ForcedReplayPolicy

        policy = ForcedReplayPolicy()
        with pytest.raises(PolicyError, match="does not support undo"):
            policy.enable_undo(True)

    def test_random_undo_restores_rng_stream(self):
        """Undoing must rewind the generator too: after backtracking, the
        policy draws exactly what a fresh run on the other branch draws."""
        from repro.policies import RandomPolicy

        hierarchy = make_random_tree(30, seed=5)
        explorer = RandomPolicy(seed=9)
        explorer.enable_undo(True)
        explorer.reset(hierarchy, None)
        first = explorer.propose()
        explorer.observe(False)
        downstream = explorer.propose()  # consumes generator words
        explorer.observe(False)
        explorer.undo()
        explorer.undo()
        assert explorer.propose() == first
        explorer.observe(False)
        assert explorer.propose() == downstream  # stream rewound exactly

    @pytest.mark.parametrize("name", ["cost-greedy", "greedy-naive"])
    def test_candidate_graph_undo_restores_exact_state(self, name):
        """The CAIGS-relevant policies revert answers bit-exactly."""
        hierarchy = make_random_dag(24, seed=6)
        distribution = random_distribution(hierarchy, 6)
        policy = make_policy(name)
        policy.enable_undo(True)
        policy.reset(hierarchy, distribution)

        def snapshot():
            cg = policy._cg
            return (bytes(cg._alive), cg._root, cg._n_alive)

        for answer in (False, True):
            query = policy.propose()
            before = snapshot()
            policy.observe(answer)
            policy.undo()
            assert snapshot() == before
            assert policy.propose() == query
            policy.observe(answer)  # advance for the next round

    def test_journaling_off_by_default(self):
        """Plain searches must not accumulate undo records."""
        hierarchy = make_random_tree(15, seed=3)
        policy = GreedyTreePolicy()
        policy.reset(hierarchy, random_distribution(hierarchy, 3))
        while not policy.done():
            policy.propose()
            policy.observe(False)
        assert policy._undo_log == []


class TestCorrectnessCheck:
    def test_wrong_result_reported(self, vehicle_hierarchy, vehicle_distribution):
        """A policy that mis-identifies a target is caught with its name."""

        class LyingPolicy(GreedyTreePolicy):
            name = "Liar"

            def result(self):
                return "Vehicle"  # claims the root no matter what

        with pytest.raises(SearchError, match="Liar returned"):
            simulate_all_targets(
                LyingPolicy(), vehicle_hierarchy, vehicle_distribution
            )
        # Without the check the walk still records per-target costs.
        engine = simulate_all_targets(
            LyingPolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            check_correctness=False,
        )
        assert engine.num_targets == vehicle_hierarchy.n


class TestTreeIntervals:
    def test_interval_containment_matches_reaches(self):
        hierarchy = make_random_tree(40, seed=5)
        tin, tout = hierarchy.tree_intervals()
        for u in hierarchy.nodes:
            ui = hierarchy.index(u)
            for z in hierarchy.nodes:
                zi = hierarchy.index(z)
                expected = hierarchy.reaches(u, z)
                assert (tin[ui] <= tin[zi] < tout[ui]) == expected

    def test_rejected_on_dags(self):
        from repro.exceptions import HierarchyError

        dag = make_random_dag(12, seed=0)
        with pytest.raises(HierarchyError, match="tree"):
            dag.tree_intervals()
