"""Unit and property tests for batched AIGS (Section III-E)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distribution import TargetDistribution
from repro.core.hierarchy import Hierarchy
from repro.core.oracle import ExactOracle
from repro.exceptions import HierarchyError, SearchError
from repro.policies import batched_search_for_target, run_batched_search

from repro.testing import make_random_tree, random_distribution


class TestBasics:
    def test_rejects_dags(self, diamond_dag):
        with pytest.raises(HierarchyError, match="open problem"):
            run_batched_search(diamond_dag, ExactOracle(diamond_dag, "c"))

    def test_rejects_bad_k(self, vehicle_hierarchy):
        with pytest.raises(SearchError, match="batch size"):
            run_batched_search(
                vehicle_hierarchy,
                ExactOracle(vehicle_hierarchy, "Car"),
                k=0,
            )

    def test_single_node_needs_no_rounds(self):
        h = Hierarchy([], nodes=["only"])
        result = run_batched_search(h, ExactOracle(h, "only"))
        assert result.returned == "only"
        assert result.num_rounds == 0

    @pytest.mark.parametrize("k", [1, 2, 3, 6])
    def test_identifies_every_target(self, vehicle_hierarchy, vehicle_distribution, k):
        for target in vehicle_hierarchy.nodes:
            result = batched_search_for_target(
                vehicle_hierarchy, target, vehicle_distribution, k=k
            )
            assert result.returned == target
            assert result.num_questions >= result.num_rounds
            assert result.num_questions <= k * result.num_rounds

    def test_answers_form_yes_prefix(self, vehicle_hierarchy, vehicle_distribution):
        """Nested heavy-path subtrees make every round yes* then no*."""
        result = batched_search_for_target(
            vehicle_hierarchy, "Mercedes", vehicle_distribution, k=3
        )
        for round_answers in result.rounds:
            answers = [a for _, a in round_answers]
            assert answers == sorted(answers, reverse=True)

    def test_zero_mass_fallback(self, vehicle_hierarchy):
        dist = TargetDistribution({"Maxima": 1.0})
        for target in vehicle_hierarchy.nodes:
            result = batched_search_for_target(
                vehicle_hierarchy, target, dist, k=3
            )
            assert result.returned == target


class TestBatchingTradeOff:
    def test_rounds_shrink_questions_grow(self):
        h = make_random_tree(150, seed=4)
        dist = random_distribution(h, 4)
        gen = np.random.default_rng(4)
        targets = [h.label(int(gen.integers(0, h.n))) for _ in range(40)]

        def averages(k):
            rounds = questions = 0
            for target in targets:
                result = batched_search_for_target(h, target, dist, k=k)
                rounds += result.num_rounds
                questions += result.num_questions
            return rounds / len(targets), questions / len(targets)

        rounds1, questions1 = averages(1)
        rounds4, questions4 = averages(4)
        assert rounds4 < rounds1
        assert questions4 >= questions1


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(min_value=2, max_value=30),
    k=st.integers(min_value=1, max_value=5),
)
def test_property_batched_soundness(seed, n, k):
    h = make_random_tree(n, seed=seed % 1000)
    dist = random_distribution(h, seed % 997)
    gen = np.random.default_rng(seed)
    target = h.label(int(gen.integers(0, h.n)))
    result = batched_search_for_target(h, target, dist, k=k)
    assert result.returned == target
    assert result.num_rounds <= h.n
