"""Tests for the interactive console mode and decision-tree analysis."""

from __future__ import annotations

import pytest

from repro.core.decision_tree import build_decision_tree
from repro.core.oracle import ExactOracle
from repro.evaluation import analyze
from repro.exceptions import SearchError
from repro.interactive import console_search, parse_answer
from repro.policies import GreedyTreePolicy


class ScriptedHuman:
    """Answers questions truthfully for a hidden target, like a worker."""

    def __init__(self, hierarchy, target):
        self.oracle = ExactOracle(hierarchy, target)
        self.prompts: list[str] = []

    def __call__(self, prompt: str) -> str:
        self.prompts.append(prompt)
        # The query is quoted inside the prompt: "... is it a 'Car'? "
        query = prompt.split("'")[1]
        return "yes" if self.oracle.answer(query) else "no"


class TestParseAnswer:
    @pytest.mark.parametrize("text", ["y", "YES", " true ", "1"])
    def test_yes(self, text):
        assert parse_answer(text) is True

    @pytest.mark.parametrize("text", ["n", "No", "false", "0"])
    def test_no(self, text):
        assert parse_answer(text) is False

    def test_garbage(self):
        with pytest.raises(SearchError, match="could not parse"):
            parse_answer("maybe")


class TestConsoleSearch:
    def test_identifies_target(self, vehicle_hierarchy, vehicle_distribution):
        printed: list[str] = []
        human = ScriptedHuman(vehicle_hierarchy, "Mercedes")
        result = console_search(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            input_fn=human,
            print_fn=printed.append,
        )
        assert result.returned == "Mercedes"
        assert len(human.prompts) == result.num_queries
        assert any("Mercedes" in line for line in printed)

    def test_reprompts_on_garbage(self, vehicle_hierarchy, vehicle_distribution):
        answers = iter(["banana", "??", "no", "no", "no", "no", "no", "no"])
        printed: list[str] = []
        result = console_search(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            input_fn=lambda _: next(answers),
            print_fn=printed.append,
        )
        # Two garbage answers were re-asked without being charged.
        assert result.returned == "Vehicle"
        assert sum("please answer" in line for line in printed) == 2

    def test_budget(self, vehicle_hierarchy, vehicle_distribution):
        with pytest.raises(SearchError, match="budget"):
            console_search(
                GreedyTreePolicy(),
                vehicle_hierarchy,
                vehicle_distribution,
                input_fn=lambda _: "no",
                print_fn=lambda _: None,
                max_queries=2,
            )

    def test_undo_takes_back_an_answer(
        self, vehicle_hierarchy, vehicle_distribution
    ):
        """A mistyped answer is reverted exactly and refunded.

        The greedy plan's first question on the Fig. 1 configuration is
        'Maxima' (asserted in the analysis tests): the worker fat-fingers
        "no", takes it back, and answers "yes" — one charged question.
        """
        answers = iter(["no", "undo", "yes"])
        printed: list[str] = []
        result = console_search(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            input_fn=lambda _: next(answers),
            print_fn=printed.append,
        )
        assert result.returned == "Maxima"
        assert any("took back" in line for line in printed)
        # Price and transcript reflect only the answer that stood.
        assert result.num_queries == 1
        assert result.total_price == 1.0
        assert result.transcript == (("Maxima", True),)

    def test_undo_with_nothing_to_undo(
        self, vehicle_hierarchy, vehicle_distribution
    ):
        human = ScriptedHuman(vehicle_hierarchy, "Honda")
        first = {"done": False}

        def stubborn(prompt: str) -> str:
            if not first["done"]:
                first["done"] = True
                return "undo"
            return human(prompt)

        printed: list[str] = []
        result = console_search(
            GreedyTreePolicy(),
            vehicle_hierarchy,
            vehicle_distribution,
            input_fn=stubborn,
            print_fn=printed.append,
        )
        assert result.returned == "Honda"
        assert any("nothing to undo" in line for line in printed)

    def test_serves_a_compiled_plan(
        self, vehicle_hierarchy, vehicle_distribution
    ):
        from repro.plan import compile_policy

        plan = compile_policy(
            GreedyTreePolicy(), vehicle_hierarchy, vehicle_distribution
        )
        human = ScriptedHuman(vehicle_hierarchy, "Maxima")
        result = console_search(
            plan, input_fn=human, print_fn=lambda _: None
        )
        assert result.returned == "Maxima"


class TestAnalysis:
    def test_vehicle_analysis(self, vehicle_hierarchy, vehicle_distribution):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        report = analyze(tree, vehicle_distribution)
        assert report.expected_cost == pytest.approx(2.04)
        assert report.worst_case_cost == 6
        assert 0 < report.efficiency <= 1
        # Depth distribution is a probability distribution.
        assert sum(report.depth_distribution.values()) == pytest.approx(1.0)
        # The root question is asked by every search.
        hottest, mass = report.hottest_queries(1)[0]
        assert hottest == "Maxima"
        assert mass == pytest.approx(1.0)
        # Expected cost == sum over queries of ask-probability (linearity).
        assert sum(report.query_frequency.values()) == pytest.approx(2.04)

    def test_depth_distribution_matches_expected_cost(
        self, vehicle_hierarchy, vehicle_distribution
    ):
        tree = build_decision_tree(
            GreedyTreePolicy, vehicle_hierarchy, vehicle_distribution
        )
        report = analyze(tree, vehicle_distribution)
        mean_depth = sum(d * p for d, p in report.depth_distribution.items())
        assert mean_depth == pytest.approx(report.expected_cost)


class TestCliInteractive:
    def test_requires_edges(self, capsys):
        from repro.cli import main

        assert main(["interactive"]) == 2
        assert "--edges" in capsys.readouterr().err

    def test_end_to_end_with_scripted_stdin(
        self, tmp_path, monkeypatch, capsys, vehicle_hierarchy
    ):
        from repro.cli import main
        from repro.taxonomy import save_edge_list

        path = tmp_path / "vehicle.tsv"
        save_edge_list(vehicle_hierarchy, path)
        human = ScriptedHuman(vehicle_hierarchy, "Sentra")
        monkeypatch.setattr("builtins.input", human)
        assert main(["interactive", "--edges", str(path)]) == 0
        out = capsys.readouterr().out
        assert "category: 'Sentra'" in out
