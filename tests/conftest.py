"""Shared fixtures for the test suite.

The reusable builders (``make_random_tree``, ``make_random_dag``,
``random_distribution``) live in :mod:`repro.testing` so test modules and
benchmarks import them from the package instead of from a ``conftest``
module (which is ambiguous when several directories define one).  The
``src/`` layout is put on ``sys.path`` by the ``pythonpath`` setting in
``pyproject.toml`` — no path surgery here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.core.distribution import TargetDistribution
from repro.core.hierarchy import Hierarchy
from repro import testing


@pytest.fixture(autouse=True, scope="session")
def assert_no_orphaned_pool_segments():
    """Fail the session if any pool shared-memory segment outlives its test.

    Every :class:`repro.engine.EvaluationPool` unlinks its segments on
    ``close()`` (and the engine's ``atexit`` hook covers pools left open at
    interpreter exit) — but ``atexit`` runs *after* pytest, so a test that
    leaks an open pool would silently rely on it.  This fixture is
    instantiated before any pool-creating fixture and therefore finalizes
    after all of them, asserting the invariant the hardening pass is about:
    no orphaned ``/dev/shm`` segment remains once the suite is done.
    The scan itself is :func:`repro.analysis.sanitize.pool_segments`, the
    same helper ``EvaluationPool.close()`` asserts with under
    ``REPRO_SANITIZE=1``.
    """
    yield
    leaked = sanitize.pool_segments()
    assert not leaked, (
        f"pool shared-memory segments leaked by the test session: {leaked}; "
        "every EvaluationPool must be closed (context manager or explicit "
        "close())"
    )


@pytest.fixture
def vehicle_hierarchy() -> Hierarchy:
    return testing.vehicle_hierarchy()


@pytest.fixture
def vehicle_distribution() -> TargetDistribution:
    return testing.vehicle_distribution()


@pytest.fixture
def diamond_dag() -> Hierarchy:
    """Smallest interesting DAG: two paths sharing a descendant."""
    return Hierarchy(
        [("r", "a"), ("r", "b"), ("a", "c"), ("b", "c"), ("c", "d")]
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
