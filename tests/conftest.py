"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np
import pytest

from repro.core.distribution import TargetDistribution
from repro.core.hierarchy import Hierarchy

#: The paper's Fig. 1 vehicle hierarchy, used throughout the tests.
VEHICLE_EDGES = [
    ("Vehicle", "Car"),
    ("Car", "Nissan"),
    ("Car", "Honda"),
    ("Car", "Mercedes"),
    ("Nissan", "Maxima"),
    ("Nissan", "Sentra"),
]

VEHICLE_PROBS = {
    "Vehicle": 0.04,
    "Car": 0.02,
    "Nissan": 0.08,
    "Honda": 0.04,
    "Mercedes": 0.02,
    "Maxima": 0.40,
    "Sentra": 0.40,
}


@pytest.fixture
def vehicle_hierarchy() -> Hierarchy:
    return Hierarchy(VEHICLE_EDGES)


@pytest.fixture
def vehicle_distribution() -> TargetDistribution:
    return TargetDistribution(VEHICLE_PROBS, normalize=False)


@pytest.fixture
def diamond_dag() -> Hierarchy:
    """Smallest interesting DAG: two paths sharing a descendant."""
    return Hierarchy(
        [("r", "a"), ("r", "b"), ("a", "c"), ("b", "c"), ("c", "d")]
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_random_tree(n: int, seed: int) -> Hierarchy:
    """A quick uniform-attachment tree for tests (not the tuned generator)."""
    gen = np.random.default_rng(seed)
    edges = [(f"t{int(gen.integers(0, i))}", f"t{i}") for i in range(1, n)]
    return Hierarchy(edges, nodes=["t0"])


def make_random_dag(n: int, seed: int, extra: int | None = None) -> Hierarchy:
    """A quick random DAG: uniform-attachment tree plus forward cross edges."""
    gen = np.random.default_rng(seed)
    edges = {(int(gen.integers(0, i)), i) for i in range(1, n)}
    extra = extra if extra is not None else max(1, n // 4)
    for _ in range(extra * 3):
        if len(edges) >= n - 1 + extra:
            break
        j = int(gen.integers(1, n))
        i = int(gen.integers(0, j))
        edges.add((i, j))
    return Hierarchy(
        [(f"d{u}", f"d{v}") for u, v in sorted(edges)], nodes=["d0"]
    )


def random_distribution(
    hierarchy: Hierarchy, seed: int, *, zeros: bool = False
) -> TargetDistribution:
    """A random positive (or partially zero) distribution for tests."""
    gen = np.random.default_rng(seed)
    values = gen.uniform(0.1, 1.0, size=hierarchy.n)
    if zeros:
        mask = gen.random(hierarchy.n) < 0.4
        if mask.all():
            mask[0] = False
        values[mask] = 0.0
    return TargetDistribution(dict(zip(hierarchy.nodes, values)))
