"""Shared fixtures for the test suite.

The reusable builders (``make_random_tree``, ``make_random_dag``,
``random_distribution``) live in :mod:`repro.testing` so test modules and
benchmarks import them from the package instead of from a ``conftest``
module (which is ambiguous when several directories define one).  The
``src/`` layout is put on ``sys.path`` by the ``pythonpath`` setting in
``pyproject.toml`` — no path surgery here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distribution import TargetDistribution
from repro.core.hierarchy import Hierarchy
from repro import testing


@pytest.fixture
def vehicle_hierarchy() -> Hierarchy:
    return testing.vehicle_hierarchy()


@pytest.fixture
def vehicle_distribution() -> TargetDistribution:
    return testing.vehicle_distribution()


@pytest.fixture
def diamond_dag() -> Hierarchy:
    """Smallest interesting DAG: two paths sharing a descendant."""
    return Hierarchy(
        [("r", "a"), ("r", "b"), ("a", "c"), ("b", "c"), ("c", "d")]
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
