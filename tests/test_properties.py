"""Property-based tests (hypothesis) for the core invariants.

Random rooted trees/DAGs are generated from hypothesis-drawn parent lists;
the properties mirror the paper's structural claims:

* every policy identifies every target (soundness, Algorithm 1);
* the greedy tree policy stays within the Theorem-2 golden-ratio bound;
* ``GreedyTree``'s heavy-path selection achieves the exhaustive objective
  (Theorem 5), and ``GreedyDAG``'s maintained weights stay exact (Alg. 7);
* decision-tree costs agree with per-target simulation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decision_tree import build_decision_tree
from repro.core.distribution import TargetDistribution
from repro.core.hierarchy import Hierarchy
from repro.core.oracle import ExactOracle
from repro.core.session import search_for_target
from repro.policies import (
    GreedyDagPolicy,
    GreedyNaivePolicy,
    GreedyTreePolicy,
    MigsPolicy,
    TopDownPolicy,
    WigsPolicy,
    optimal_expected_cost,
)

PHI = (1 + math.sqrt(5)) / 2


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def tree_strategy(draw, max_nodes: int = 14):
    """A rooted tree from a random parent list."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    parents = [
        draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)
    ]
    edges = [(f"v{p}", f"v{i + 1}") for i, p in enumerate(parents)]
    return Hierarchy(edges, nodes=["v0"])


@st.composite
def dag_strategy(draw, max_nodes: int = 12):
    """A rooted DAG: tree plus forward cross edges."""
    hierarchy = draw(tree_strategy(max_nodes=max_nodes))
    n = hierarchy.n
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=1, max_value=n - 1),
            ),
            max_size=6,
        )
    )
    edges = set(hierarchy.edges())
    for i, j in extra:
        if i < j:
            edges.add((f"v{i}", f"v{j}"))
    return Hierarchy(sorted(edges), nodes=["v0"])


@st.composite
def weights_strategy(draw, hierarchy: Hierarchy, min_weight: float = 0.0):
    values = draw(
        st.lists(
            st.floats(
                min_value=min_weight,
                max_value=10.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=hierarchy.n,
            max_size=hierarchy.n,
        )
    )
    if sum(values) <= 0:
        values = [1.0] * hierarchy.n
    return TargetDistribution(dict(zip(hierarchy.nodes, values)))


@st.composite
def dag_with_distribution(draw, max_nodes: int = 12):
    hierarchy = draw(dag_strategy(max_nodes=max_nodes))
    return hierarchy, draw(weights_strategy(hierarchy))


@st.composite
def tree_with_distribution(draw, max_nodes: int = 12, min_weight: float = 0.0):
    hierarchy = draw(tree_strategy(max_nodes=max_nodes))
    return hierarchy, draw(weights_strategy(hierarchy, min_weight=min_weight))


# ----------------------------------------------------------------------
# Soundness: every policy identifies every target
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(data=dag_with_distribution())
@pytest.mark.parametrize(
    "factory",
    [TopDownPolicy, MigsPolicy, WigsPolicy, GreedyNaivePolicy, GreedyDagPolicy],
    ids=lambda f: f.__name__,
)
def test_every_policy_identifies_every_target_on_dags(factory, data):
    hierarchy, distribution = data
    policy = factory()
    for target in hierarchy.nodes:
        result = search_for_target(policy, hierarchy, target, distribution)
        assert result.returned == target
        assert result.num_queries <= 2 * hierarchy.n


@settings(max_examples=40, deadline=None)
@given(data=tree_with_distribution())
def test_greedy_tree_identifies_every_target(data):
    hierarchy, distribution = data
    policy = GreedyTreePolicy()
    for target in hierarchy.nodes:
        result = search_for_target(policy, hierarchy, target, distribution)
        assert result.returned == target


# ----------------------------------------------------------------------
# Theorem 2: golden-ratio bound on trees
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(data=tree_with_distribution(max_nodes=9, min_weight=0.05))
def test_theorem2_golden_ratio_bound(data):
    """Theorem 2 on strictly positive distributions.

    Positivity matters: with zero-weight regions every split of a zero-mass
    subchain ties at the same middle-point objective, and an adversarial tie
    break can walk the chain one node at a time (hypothesis finds a 3-node
    chain with greedy = 2, optimal = 1 > phi ratio).  The paper's analysis —
    like Cicalese et al.'s — assumes positive weights; the Equation-(1)
    rounding exists precisely to keep weights bounded away from degenerate.
    """
    hierarchy, distribution = data
    tree = build_decision_tree(GreedyTreePolicy, hierarchy, distribution)
    greedy = tree.expected_cost(distribution)
    best = optimal_expected_cost(hierarchy, distribution)
    assert greedy <= PHI * best + 1e-6


# ----------------------------------------------------------------------
# Theorem 5 / Algorithm equivalences
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(data=tree_with_distribution(), target_seed=st.integers(0, 10**6))
def test_greedy_tree_achieves_naive_objective(data, target_seed):
    hierarchy, distribution = data
    gen = np.random.default_rng(target_seed)
    target = hierarchy.label(int(gen.integers(0, hierarchy.n)))
    oracle = ExactOracle(hierarchy, target)
    fast, naive = GreedyTreePolicy(), GreedyNaivePolicy()
    fast.reset(hierarchy, distribution)
    naive.reset(hierarchy, distribution)
    while not fast.done():
        q_fast = fast.propose()
        q_naive = naive.propose()
        assert naive.objective_of(q_fast) == pytest.approx(
            naive.objective_of(q_naive), abs=1e-9
        )
        answer = oracle.answer(q_fast)
        fast.observe(answer)
        naive._pending = q_fast
        naive.observe(answer)
    assert fast.result() == target


@settings(max_examples=30, deadline=None)
@given(data=dag_with_distribution(), target_seed=st.integers(0, 10**6))
def test_greedy_dag_weights_stay_exact(data, target_seed):
    hierarchy, distribution = data
    gen = np.random.default_rng(target_seed)
    target = hierarchy.label(int(gen.integers(0, hierarchy.n)))
    oracle = ExactOracle(hierarchy, target)
    policy = GreedyDagPolicy()
    policy.reset(hierarchy, distribution)
    while not policy.done():
        policy.observe(oracle.answer(policy.propose()))
        root_label = hierarchy.label(policy._root)
        for node in hierarchy.descendants(root_label):
            if policy.is_candidate(node):
                assert policy.maintained_weight(node) == pytest.approx(
                    policy.recomputed_weight(node)
                )
    assert policy.result() == target


# ----------------------------------------------------------------------
# Decision-tree consistency
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(data=dag_with_distribution(max_nodes=10))
def test_decision_tree_cost_equals_simulation(data):
    hierarchy, distribution = data
    tree = build_decision_tree(GreedyDagPolicy, hierarchy, distribution)
    tree.validate()
    policy = GreedyDagPolicy()
    simulated = sum(
        distribution.p(target)
        * search_for_target(policy, hierarchy, target, distribution).num_queries
        for target in hierarchy.nodes
    )
    assert tree.expected_cost(distribution) == pytest.approx(simulated)


# ----------------------------------------------------------------------
# Transcript invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(data=dag_with_distribution(), target_seed=st.integers(0, 10**6))
def test_transcripts_are_truthful_and_nonredundant(data, target_seed):
    """Every recorded answer matches ground truth; no question repeats."""
    hierarchy, distribution = data
    gen = np.random.default_rng(target_seed)
    target = hierarchy.label(int(gen.integers(0, hierarchy.n)))
    truth = hierarchy.ancestors(target)
    result = search_for_target(
        GreedyDagPolicy(), hierarchy, target, distribution
    )
    queries = [q for q, _ in result.transcript]
    assert len(queries) == len(set(queries))  # a repeat would be wasted
    for query, answer in result.transcript:
        assert answer == (query in truth)


@settings(max_examples=30, deadline=None)
@given(data=dag_with_distribution(), target_seed=st.integers(0, 10**6))
def test_candidates_shrink_monotonically(data, target_seed):
    """Each answer strictly reduces the candidate set (progress guarantee)."""
    from repro.core.candidate import CandidateGraph
    from repro.core.oracle import ExactOracle

    hierarchy, distribution = data
    gen = np.random.default_rng(target_seed)
    target = hierarchy.label(int(gen.integers(0, hierarchy.n)))
    oracle = ExactOracle(hierarchy, target)
    policy = GreedyDagPolicy()
    policy.reset(hierarchy, distribution)
    shadow = CandidateGraph(hierarchy)
    while not policy.done():
        query = policy.propose()
        answer = oracle.answer(query)
        before = shadow.size
        shadow.apply(query, answer)
        assert shadow.size < before
        assert shadow.contains(target)
        policy.observe(answer)
    assert shadow.result() == policy.result() == target


# ----------------------------------------------------------------------
# Rounding (Equation 1)
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(data=dag_with_distribution())
def test_rounded_weights_invariants(data):
    hierarchy, distribution = data
    weights = distribution.rounded_weights(hierarchy)
    n = hierarchy.n
    assert weights.dtype.kind == "i"
    assert (weights >= 0).all()
    assert weights.max() == n * n  # the max-probability node
    probs = distribution.as_array(hierarchy)
    for p, w in zip(probs, weights):
        assert (w > 0) == (p > 0)
