"""Tests for the network edge (``repro.serve.transport``) and loadgen.

Five contracts:

1. **Wire fidelity** — target and interactive sessions served over a real
   localhost socket return byte-identical :class:`SearchResult`s to local
   ``run_search``; typed errors cross the wire as their original classes.

2. **Stickiness & backpressure** — a live session id is refused on a
   second open (same or other connection) with a typed error; the
   per-connection cap, the interactive cap, and a slow consumer's outbox
   overflow all degrade typed, never hang.

3. **Adversarial clients** — mid-session disconnects orphan (not crash)
   in-flight work, abandoned interactive runtimes are reclaimed, and the
   transport keeps serving everyone else.

4. **Event-loop liveness** — the regression test for the ``aserve``
   stall bug: while one connection's cohort is inside a blocking
   ``step()`` (the pool-collect path, emulated with a deterministic
   sleep), a second connection's pings keep round-tripping, proving the
   collect runs off-loop (``asyncio.to_thread``).

5. **Abandoned-generator hygiene** — breaking out of ``serve()`` /
   ``aserve()`` mid-flight reclaims every in-flight session, group
   ticket, and stream pin; runs under ``REPRO_SANITIZE=1`` so any
   accounting or pin drift raises :class:`SanitizerError`.

Plus the open-loop load generator: deterministic schedules for a seed,
sane percentile math, and a short end-to-end run over the real wire.
"""

from __future__ import annotations

import asyncio
import json
import math
import time

import pytest

from repro.core.oracle import ExactOracle
from repro.core.session import run_search
from repro.engine import EvaluationPool
from repro.exceptions import (
    AdmissionError,
    QuotaExceededError,
    ServeError,
    ServeTimeoutError,
    TransportError,
)
from repro.faults import RetryPolicy
from repro.plan import compile_policy
from repro.policies import GreedyTreePolicy
from repro.serve import (
    LoadProfile,
    Server,
    ServeClient,
    ServeTransport,
    SessionRequest,
    run_load,
)
from repro.serve.loadgen import _draw_schedule, percentile
from repro.serve.transport import MAX_FRAME_BYTES, _encode
from repro.testing import make_random_tree, random_distribution


def _config(n=40, seed=7):
    hierarchy = make_random_tree(n, seed=seed)
    distribution = random_distribution(hierarchy, seed)
    plan = compile_policy(GreedyTreePolicy(), hierarchy, distribution)
    return plan, hierarchy, distribution


def _references(plan, hierarchy, targets):
    return {
        t: run_search(plan, ExactOracle(hierarchy, t), hierarchy)
        for t in targets
    }


async def _raw_connect(host, port):
    """A bare socket speaking the wire protocol, no client smarts."""
    return await asyncio.open_connection(host, port, limit=MAX_FRAME_BYTES)


async def _poll(predicate, *, timeout=5.0, interval=0.005):
    """Await a condition the event loop settles asynchronously."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(interval)


# ----------------------------------------------------------------------
# 1. Wire fidelity
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_target_sessions_bit_identical(self):
        plan, hierarchy, _ = _config()
        targets = list(hierarchy.nodes)[:12]
        reference = _references(plan, hierarchy, targets)

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    clients = [
                        await ServeClient.connect(host, port)
                        for _ in range(3)
                    ]
                    try:
                        results = await asyncio.gather(
                            *(
                                clients[i % 3].serve_target(f"s-{i}", t)
                                for i, t in enumerate(targets)
                            )
                        )
                    finally:
                        for client in clients:
                            await client.close()
                    assert transport.stats.opened_target == len(targets)
                    assert transport.stats.orphaned == 0
                    return results

        results = asyncio.run(main())
        for target, result in zip(targets, results):
            assert result == reference[target], target

    def test_interactive_session_matches_local(self):
        plan, hierarchy, _ = _config()
        target = list(hierarchy.nodes)[5]
        reference = run_search(
            plan, ExactOracle(hierarchy, target), hierarchy
        )

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        oracle = ExactOracle(hierarchy, target)
                        result = await client.run_target_session(
                            "live", oracle
                        )
                    assert transport.stats.opened_interactive == 1
                    return result

        assert asyncio.run(main()) == reference

    def test_ping_reports_server_state(self):
        plan, _, _ = _config()

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        return await client.ping()

        pong = asyncio.run(main())
        assert pong["op"] == "pong"
        assert pong["in_flight"] == 0
        assert pong["draining"] is False

    def test_typed_errors_cross_the_wire(self):
        """An unknown target comes back as the original HierarchyError
        (not a flattened string), and protocol misuse is TransportError."""
        plan, _, _ = _config()

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        errors = []
                        try:
                            await client.serve_target("bad", "no-such-node")
                        except Exception as exc:  # noqa: BLE001 - recording type
                            errors.append(exc)
                        # open frame with neither target nor interactive
                        inbox = client._inbox["half"] = asyncio.Queue()
                        await client._post({"op": "open", "id": "half"})
                        errors.append(await inbox.get())
                        return errors, transport.stats.rejected

        (search_error, frame), rejected = asyncio.run(main())
        from repro.exceptions import HierarchyError

        assert isinstance(search_error, HierarchyError)
        assert frame["error"] == "TransportError"
        assert rejected == 1

    def test_malformed_json_is_protocol_error_not_crash(self):
        plan, hierarchy, _ = _config()
        target = list(hierarchy.nodes)[1]
        reference = run_search(
            plan, ExactOracle(hierarchy, target), hierarchy
        )

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    reader, writer = await _raw_connect(host, port)
                    writer.write(b"this is not json\n")
                    await writer.drain()
                    line = await reader.readline()
                    frame = json.loads(line)
                    writer.close()
                    await writer.wait_closed()
                    # The transport survives and serves the next client.
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        result = await client.serve_target("ok", target)
                    return frame, transport.stats.protocol_errors, result

        frame, protocol_errors, result = asyncio.run(main())
        assert frame["error"] == "TransportError"
        assert protocol_errors == 1
        assert result == reference


# ----------------------------------------------------------------------
# 2. Stickiness and backpressure
# ----------------------------------------------------------------------
class TestStickiness:
    def test_live_id_refused_on_second_connection(self):
        plan, _, _ = _config()

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    a = await ServeClient.connect(host, port)
                    b = await ServeClient.connect(host, port)
                    try:
                        session = await a.open_interactive("shared")
                        with pytest.raises(TransportError, match="sticky"):
                            await b.open_interactive("shared")
                        # Finishing on A releases the id for B.
                        while not session.done:
                            await session.answer(True)
                        again = await b.open_interactive("shared")
                        await again.close()
                    finally:
                        await a.close()
                        await b.close()
                    return transport.stats.rejected

        assert asyncio.run(main()) == 1

    def test_completed_target_id_is_reusable(self):
        plan, hierarchy, _ = _config()
        target = list(hierarchy.nodes)[2]

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        first = await client.serve_target("same", target)
                        second = await client.serve_target("same", target)
                        return first, second

        first, second = asyncio.run(main())
        assert first == second


class TestBackpressure:
    def test_per_connection_cap_is_typed(self):
        plan, _, _ = _config()

        async def main():
            with Server(plan) as server:
                async with ServeTransport(
                    server, max_sessions_per_conn=1
                ) as transport:
                    host, port = transport.address
                    async with await ServeClient.connect(
                        host,
                        port,
                        retry=RetryPolicy(attempts=1),
                    ) as client:
                        held = await client.open_interactive("held")
                        with pytest.raises(AdmissionError, match="cap"):
                            await client.open_interactive("overflow")
                        await held.close()

        asyncio.run(main())

    def test_interactive_cap_is_typed(self):
        plan, _, _ = _config()

        async def main():
            with Server(plan) as server:
                async with ServeTransport(
                    server, max_interactive=0
                ) as transport:
                    host, port = transport.address
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        with pytest.raises(AdmissionError, match="cap"):
                            await client.open_interactive("nope")

        asyncio.run(main())

    def test_slow_consumer_is_disconnected_not_buffered(self):
        """A reader that never drains its replies is dropped once its
        outbox fills; everyone else keeps being served."""
        plan, hierarchy, _ = _config()
        targets = list(hierarchy.nodes)[:8]
        reference = _references(plan, hierarchy, targets)

        async def main():
            with Server(plan) as server:
                async with ServeTransport(
                    server, outbox_limit=1
                ) as transport:
                    host, port = transport.address
                    _, writer = await _raw_connect(host, port)
                    for i, t in enumerate(targets):
                        writer.write(
                            _encode(
                                {"op": "open", "id": f"slow-{i}", "target": t}
                            )
                        )
                    await writer.drain()
                    await _poll(
                        lambda: transport.stats.slow_disconnects == 1
                    )
                    # The healthy client is unaffected.
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        result = await client.serve_target(
                            "healthy", targets[0]
                        )
                    writer.close()
                    return result

        assert asyncio.run(main()) == reference[targets[0]]


# ----------------------------------------------------------------------
# 3. Adversarial clients
# ----------------------------------------------------------------------
class TestDisconnects:
    def test_mid_session_disconnect_orphans_not_crashes(self):
        plan, hierarchy, _ = _config()
        targets = list(hierarchy.nodes)[:6]
        survivor = list(hierarchy.nodes)[10]
        reference = run_search(
            plan, ExactOracle(hierarchy, survivor), hierarchy
        )

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    _, writer = await _raw_connect(host, port)
                    for i, t in enumerate(targets):
                        writer.write(
                            _encode(
                                {"op": "open", "id": f"gone-{i}", "target": t}
                            )
                        )
                    await writer.drain()
                    writer.close()  # hang up mid-flight
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        result = await client.serve_target("live", survivor)
                    await _poll(
                        lambda: transport.stats.orphaned == len(targets)
                    )
                    return result, server.stats

        result, stats = asyncio.run(main())
        assert result == reference
        # The server finished the orphans (vectorized cohorts run to
        # completion); nothing leaked.
        assert stats.completed == len(targets) + 1

    def test_close_frame_abandons_target_session(self):
        plan, hierarchy, _ = _config()
        target = list(hierarchy.nodes)[4]

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    async with await ServeClient.connect(
                        host, port
                    ) as client:
                        await client._post(
                            {"op": "open", "id": "walk", "target": target}
                        )
                        await client._post({"op": "close", "id": "walk"})
                        await _poll(lambda: transport.stats.orphaned == 1)
                        # The id is free again immediately after the close.
                        return await client.serve_target("walk", target)

        result = asyncio.run(main())
        assert result == run_search(
            plan, ExactOracle(hierarchy, target), hierarchy
        )

    def test_interactive_dies_with_its_connection(self):
        plan, _, _ = _config()

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    a = await ServeClient.connect(host, port)
                    await a.open_interactive("mine")
                    await a.close()  # vanish without finishing
                    await _poll(
                        lambda: transport._interactive_count == 0
                    )
                    async with await ServeClient.connect(
                        host, port
                    ) as b:
                        # Sticky key released with the connection.
                        session = await b.open_interactive("mine")
                        await session.close()
                    return transport._interactive_count

        assert asyncio.run(main()) == 0


# ----------------------------------------------------------------------
# 4. Drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_graceful_drain_delivers_inflight_results(self):
        plan, hierarchy, _ = _config()
        targets = list(hierarchy.nodes)[:6]
        reference = _references(plan, hierarchy, targets)

        async def main():
            with Server(plan) as server:
                transport = ServeTransport(server)
                host, port = await transport.start()
                client = await ServeClient.connect(host, port)
                tasks = [
                    asyncio.ensure_future(
                        client.serve_target(f"d-{i}", t)
                    )
                    for i, t in enumerate(targets)
                ]
                await _poll(
                    lambda: transport.stats.opened_target == len(targets)
                )
                await transport.shutdown()
                results = await asyncio.gather(*tasks)
                await client.close()
                return results

        results = asyncio.run(main())
        for target, result in zip(targets, results):
            assert result == reference[target]

    def test_drain_past_deadline_raises_typed(self, monkeypatch):
        plan, hierarchy, _ = _config()
        target = list(hierarchy.nodes)[3]

        async def main():
            with Server(plan) as server:
                real_step = server.step

                def stuck_step():
                    time.sleep(0.25)
                    return real_step()

                monkeypatch.setattr(server, "step", stuck_step)
                transport = ServeTransport(server)
                host, port = await transport.start()
                client = await ServeClient.connect(host, port)
                task = asyncio.ensure_future(
                    client.serve_target("slow", target, deadline=5.0)
                )
                await asyncio.sleep(0.05)  # the open is in flight
                with pytest.raises(ServeTimeoutError, match="deadline"):
                    await transport.shutdown(timeout=0.05)
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
                await client.close()
                return server.stats.abandoned

        assert asyncio.run(main()) >= 1

    def test_connect_after_shutdown_fails_typed(self):
        plan, _, _ = _config()

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                with pytest.raises((ConnectionError, OSError)):
                    await ServeClient.connect(
                        host, port, retry=RetryPolicy(attempts=1)
                    )

        asyncio.run(main())

    def test_double_start_refused(self):
        plan, _, _ = _config()

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    with pytest.raises(ServeError, match="already started"):
                        await transport.start()

        asyncio.run(main())


# ----------------------------------------------------------------------
# 5. Event-loop liveness: the aserve stall regression
# ----------------------------------------------------------------------
class TestEventLoopLiveness:
    def test_second_connection_progresses_during_blocking_collect(
        self, monkeypatch
    ):
        """The bug this PR fixes: ``aserve`` used to run the blocking
        ``step()`` (pool poll/collect included) directly on the event
        loop, so while one cohort was inside a collect *every other
        connection froze*.  With the collect in ``asyncio.to_thread``,
        connection B's pings must round-trip while connection A's
        session is pinned inside a 0.5s step."""
        plan, hierarchy, _ = _config()
        target = list(hierarchy.nodes)[7]

        async def main():
            with Server(plan) as server:
                real_step = server.step

                def blocking_step():
                    # Stand-in for a pool collect: deterministic, long,
                    # and genuinely blocking the calling thread.
                    time.sleep(0.5)
                    return real_step()

                monkeypatch.setattr(server, "step", blocking_step)
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    a = await ServeClient.connect(host, port)
                    b = await ServeClient.connect(host, port)
                    try:
                        pinned = asyncio.ensure_future(
                            a.serve_target("cohort", target, deadline=30.0)
                        )
                        await asyncio.sleep(0.1)  # A is inside step()
                        rtts = []
                        for _ in range(3):
                            t0 = time.monotonic()
                            await b.ping(deadline=5.0)
                            rtts.append(time.monotonic() - t0)
                        result = await pinned
                    finally:
                        await a.close()
                        await b.close()
                    return rtts, result

        rtts, result = asyncio.run(main())
        # Un-fixed, each ping waits out at least one full 0.5s step.
        assert max(rtts) < 0.4, rtts
        assert result == run_search(
            plan, ExactOracle(hierarchy, target), hierarchy
        )


# ----------------------------------------------------------------------
# 6. Abandoned-generator hygiene (REPRO_SANITIZE=1)
# ----------------------------------------------------------------------
class TestAbandonedFeeds:
    @pytest.fixture
    def sanitized(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")

    def test_serve_abandoned_midflight_reclaims(self, sanitized):
        plan, hierarchy, _ = _config()
        targets = list(hierarchy.nodes)[:10]

        def feed():
            for i, t in enumerate(targets):
                yield SessionRequest(i, target=t)

        with Server(plan, max_sessions=4) as server:
            gen = server.serve(feed())
            next(gen)  # one outcome out, the rest in flight
            gen.close()  # consumer walks away
            assert server.in_flight == 0
            assert server.queued == 0
            assert server.stats.abandoned > 0
            # The server is still usable after the reclaim.
            outcomes = list(
                server.serve(iter([SessionRequest("again", target=targets[0])]))
            )
            assert outcomes[0].ok
        # close() ran its sanitizer pin audit without tripping.

    def test_aserve_abandoned_midflight_reclaims(self, sanitized):
        plan, hierarchy, _ = _config()
        targets = list(hierarchy.nodes)[:10]

        async def feed():
            for i, t in enumerate(targets):
                yield SessionRequest(i, target=t)

        async def main():
            with Server(plan, max_sessions=4) as server:
                gen = server.aserve(feed())
                await gen.__anext__()
                await gen.aclose()
                assert server.in_flight == 0
                assert server.queued == 0
                return server.stats.abandoned

        assert asyncio.run(main()) > 0

    def test_abandoned_transport_client_leaves_zero_pin_drift(
        self, sanitized
    ):
        """The acceptance scenario: a pool-backed server (stream pins
        live in the pool registry), a client that abandons mid-flight,
        then a clean drain — ``close()``'s sanitizer audits must all
        pass and nothing stays pinned."""
        plan, hierarchy, _ = _config(n=60, seed=13)
        targets = list(hierarchy.nodes)[:12]

        async def main():
            with EvaluationPool(workers=2, max_plans=4) as pool:
                with Server(plan, pool=pool, max_sessions=16) as server:
                    async with ServeTransport(server) as transport:
                        host, port = transport.address
                        _, writer = await _raw_connect(host, port)
                        for i, t in enumerate(targets):
                            writer.write(
                                _encode(
                                    {
                                        "op": "open",
                                        "id": f"x-{i}",
                                        "target": t,
                                    }
                                )
                            )
                        await writer.drain()
                        writer.close()  # abandon every session
                        await _poll(lambda: server.stats.completed >= 1)
                    assert server.in_flight == 0
                    drift = transport.stats.orphaned
                # Server close passed its REPRO_SANITIZE pin audit and
                # released every stream pin back to the pool.
                return drift

        assert asyncio.run(main()) >= 1


# ----------------------------------------------------------------------
# 7. The open-loop load generator
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5
        assert math.isnan(percentile([], 99))

    def test_profile_validation(self):
        with pytest.raises(ServeError):
            LoadProfile(rate=0)
        with pytest.raises(ServeError):
            LoadProfile(interactive_fraction=1.5)
        with pytest.raises(ServeError):
            LoadProfile(connections=0)

    def test_schedule_is_deterministic_for_a_seed(self):
        _, hierarchy, _ = _config()
        targets = list(hierarchy.nodes)
        profile = LoadProfile(
            sessions=50, abandon_fraction=0.2, slow_fraction=0.2, seed=11
        )
        a = _draw_schedule(profile, targets)
        b = _draw_schedule(profile, targets)
        assert a == b
        assert any(s.abandon_after for s in a)
        assert any(s.slow for s in a)
        # Arrivals are sorted (cumulative exponential gaps).
        assert all(x.at <= y.at for x, y in zip(a, a[1:]))

    def test_end_to_end_over_the_wire(self):
        plan, hierarchy, _ = _config()
        profile = LoadProfile(
            rate=500.0,
            sessions=40,
            interactive_fraction=0.5,
            abandon_fraction=0.1,
            connections=2,
            seed=3,
        )

        async def main():
            with Server(plan) as server:
                async with ServeTransport(server) as transport:
                    host, port = transport.address
                    return await run_load(
                        host, port, profile, hierarchy, deadline=30.0
                    )

        report = asyncio.run(main())
        summary = report.summary()
        assert report.completed + report.abandoned + report.errored == 40
        assert report.errored == 0
        assert report.completed > 0
        assert summary["sessions_per_second"] > 0
        assert summary["question_p99_ms"] >= summary["question_p50_ms"]
        assert "->" in str(report)


# ----------------------------------------------------------------------
# 8. Pool-backed serving over the wire (fork and spawn via CI legs)
# ----------------------------------------------------------------------
class TestPoolBackedTransport:
    def test_offloaded_sessions_bit_identical_over_wire(self):
        """The full stack: socket -> feed bridge -> aserve -> pool
        streaming offload -> outcome routing.  Runs under both start
        methods via the REPRO_POOL_START_METHOD CI legs."""
        plan, hierarchy, _ = _config(n=60, seed=13)
        targets = list(hierarchy.nodes)[:24]
        reference = _references(plan, hierarchy, targets)

        async def main():
            with EvaluationPool(workers=2, max_plans=4) as pool:
                with Server(plan, pool=pool, max_sessions=16) as server:
                    async with ServeTransport(server) as transport:
                        host, port = transport.address
                        async with await ServeClient.connect(
                            host, port
                        ) as client:
                            results = await asyncio.gather(
                                *(
                                    client.serve_target(f"p-{i}", t)
                                    for i, t in enumerate(targets)
                                )
                            )
                    offloaded = server.stats.offloaded
            return results, offloaded

        results, offloaded = asyncio.run(main())
        assert offloaded == len(targets)
        for target, result in zip(targets, results):
            assert result == reference[target], target


# ----------------------------------------------------------------------
# 9. aserve-vs-serve parity on seeded feeds
# ----------------------------------------------------------------------
class TestAsyncSyncParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_feed_outcomes_identical(self, seed):
        """The same seeded request mix (good targets, unknown targets,
        quota-limited tenants) through ``serve()`` and ``aserve()``
        yields identical outcomes: same results byte-for-byte, same
        typed error classes, same stats."""
        import numpy as _np

        plan, hierarchy, _ = _config(n=50, seed=9)
        rng = _np.random.default_rng(seed)
        nodes = list(hierarchy.nodes)
        requests = []
        for i in range(30):
            roll = float(rng.random())
            if roll < 0.15:
                target = f"missing-{i}"  # unknown node -> typed error
            else:
                target = nodes[int(rng.integers(len(nodes)))]
            tenant = ["default", "acme"][int(rng.integers(2))]
            requests.append(
                SessionRequest(i, target=target, tenant=tenant)
            )

        def run_sync():
            with Server(plan, max_sessions=4) as server:
                outcomes = {
                    o.session_id: o for o in server.serve(iter(requests))
                }
                return outcomes, server.stats

        def run_async():
            async def feed():
                for request in requests:
                    yield request

            async def main():
                with Server(plan, max_sessions=4) as server:
                    outcomes = {}
                    async for o in server.aserve(feed()):
                        outcomes[o.session_id] = o
                    return outcomes, server.stats

            return asyncio.run(main())

        sync_out, sync_stats = run_sync()
        async_out, async_stats = run_async()
        assert set(sync_out) == set(async_out) == set(range(30))
        for i in range(30):
            s, a = sync_out[i], async_out[i]
            assert s.result == a.result, i
            assert type(s.error) is type(a.error), i
            assert s.tenant == a.tenant, i
        assert sync_stats.completed == async_stats.completed
        assert sync_stats.errored == async_stats.errored
        assert sync_stats.submitted == async_stats.submitted

    def test_quota_rejections_identical(self):
        """Per-tenant plan quotas reject identically on both paths."""
        base_plan, hierarchy, _ = _config(n=30, seed=5)
        h2 = make_random_tree(22, seed=2)
        other = compile_policy(
            GreedyTreePolicy(), h2, random_distribution(h2, 2)
        )
        requests = [
            SessionRequest(0, target=hierarchy.nodes[1], tenant="t"),
            SessionRequest(1, target=h2.root, plan=other, tenant="t"),
        ]

        def outcomes_sync():
            with Server(base_plan, plan_quota=1) as server:
                return [
                    (o.session_id, type(o.error))
                    for o in server.serve(iter(requests))
                ]

        def outcomes_async():
            async def feed():
                for request in requests:
                    yield request

            async def main():
                with Server(base_plan, plan_quota=1) as server:
                    return [
                        (o.session_id, type(o.error))
                        async for o in server.aserve(feed())
                    ]

            return asyncio.run(main())

        sync_view = sorted(outcomes_sync(), key=str)
        async_view = sorted(outcomes_async(), key=str)
        assert sync_view == async_view
        assert (1, QuotaExceededError) in sync_view
