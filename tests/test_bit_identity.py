"""Property-based bit-identity across every execution mode of the engine.

The engine's core contract since the sharded-walk PR: for any hierarchy,
policy, and configuration, the per-target ``queries``/``prices`` arrays
and ``decision_nodes`` are *bit-identical* whichever way the walk executes
— sequentially, sharded over a per-call process pool (``jobs=N``), on a
warm persistent :class:`~repro.engine.EvaluationPool`, or overlapped with
other policies in one :func:`~repro.engine.simulate_policies` batch.  The
fixed-case tests in ``test_parallel.py`` / ``test_pool.py`` locate
failures precisely; this suite *searches* for violations over random
tree/DAG hierarchies × every registry policy × all four modes, with
hypothesis shrinking any counterexample to a minimal seed.

Examples are generated from integer seeds (the repo's deterministic
``repro.testing`` builders), so a failing case reproduces from its printed
seed alone; ``derandomize=True`` keeps CI stable run to run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.costs import TableCost
from repro.engine import EvaluationPool, simulate_all_targets, simulate_policies
from repro.policies import available_policies, make_policy
from repro.testing import make_random_dag, make_random_tree, random_distribution

#: Policies that only define behaviour on trees (mirrors test_plan.py).
TREE_ONLY = {"greedy-tree"}

#: Modest example counts: every example forks worker processes, so the
#: suite trades exhaustiveness per run for a tolerable wall-clock; CI runs
#: it on every push, which is where the coverage accumulates.
_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

_POOL: EvaluationPool | None = None


@pytest.fixture(autouse=True, scope="module")
def _module_pool():
    """One warm pool for the whole module (hypothesis examples must not
    pay a pool spin-up each, and function-scoped fixtures do not mix with
    ``@given``)."""
    global _POOL
    _POOL = EvaluationPool(workers=2)
    try:
        yield
    finally:
        _POOL.close()
        _POOL = None


def _hierarchy(kind: str, n: int, seed: int):
    if kind == "tree":
        return make_random_tree(n, seed=seed)
    return make_random_dag(n, seed=seed)


def _policies_for(kind: str) -> tuple[str, ...]:
    names = available_policies()
    if kind == "tree":
        return names
    return tuple(n for n in names if n not in TREE_ONLY)


def _assert_same(a, b, context: str) -> None:
    assert a.policy == b.policy, context
    assert a.decision_nodes == b.decision_nodes, context
    assert np.array_equal(a.target_ix, b.target_ix), context
    assert np.array_equal(a.queries, b.queries), context
    assert np.array_equal(a.prices, b.prices, equal_nan=True), context


def _all_mode_results(policy_name, hierarchy, distribution, costs=None):
    """The same evaluation through all four execution modes."""
    common = dict(result_cache=False)
    return {
        "sequential": simulate_all_targets(
            make_policy(policy_name), hierarchy, distribution, costs,
            jobs=1, pool=False, **common,
        ),
        "jobs=2": simulate_all_targets(
            make_policy(policy_name), hierarchy, distribution, costs,
            jobs=2, pool=False, **common,
        ),
        "warm pool": simulate_all_targets(
            make_policy(policy_name), hierarchy, distribution, costs,
            pool=_POOL, **common,
        ),
        "overlapped": simulate_policies(
            [make_policy(policy_name)], hierarchy, distribution, costs,
            pool=_POOL, **common,
        )[0],
    }


class TestEveryModeBitIdentical:
    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["tree", "dag"]),
        policy_index=st.integers(min_value=0, max_value=63),
        n=st.integers(min_value=8, max_value=48),
    )
    def test_full_evaluation(self, seed, kind, policy_index, n):
        hierarchy = _hierarchy(kind, n, seed)
        distribution = random_distribution(hierarchy, seed)
        names = _policies_for(kind)
        name = names[policy_index % len(names)]
        results = _all_mode_results(name, hierarchy, distribution)
        reference = results.pop("sequential")
        for mode, result in results.items():
            _assert_same(
                reference, result,
                f"{mode} diverged: kind={kind} n={n} seed={seed} policy={name}",
            )

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["tree", "dag"]),
        n=st.integers(min_value=10, max_value=40),
    )
    def test_heterogeneous_prices(self, seed, kind, n):
        hierarchy = _hierarchy(kind, n, seed)
        distribution = random_distribution(hierarchy, seed)
        rng = np.random.default_rng(seed)
        costs = TableCost(
            {
                node: float(price)
                for node, price in zip(
                    hierarchy.nodes,
                    rng.uniform(0.5, 4.0, size=hierarchy.n).round(2),
                )
            }
        )
        name = "greedy-tree" if kind == "tree" else "greedy-dag"
        results = _all_mode_results(name, hierarchy, distribution, costs)
        reference = results.pop("sequential")
        for mode, result in results.items():
            _assert_same(
                reference, result,
                f"{mode} diverged: kind={kind} n={n} seed={seed} priced",
            )

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["tree", "dag"]),
        n=st.integers(min_value=12, max_value=40),
        num_policies=st.integers(min_value=2, max_value=3),
    )
    def test_overlapped_compare_matches_policy_serial(
        self, seed, kind, n, num_policies
    ):
        """compare-style batches: k policies overlapped on the pool produce
        exactly the per-policy sequential arrays, pairwise."""
        hierarchy = _hierarchy(kind, n, seed)
        distribution = random_distribution(hierarchy, seed)
        names = _policies_for(kind)
        chosen = [names[(seed + i) % len(names)] for i in range(num_policies)]
        serial = [
            simulate_all_targets(
                make_policy(name), hierarchy, distribution,
                jobs=1, pool=False, result_cache=False,
            )
            for name in chosen
        ]
        overlapped = simulate_policies(
            [make_policy(name) for name in chosen],
            hierarchy, distribution,
            pool=_POOL, result_cache=False,
        )
        for name, a, b in zip(chosen, serial, overlapped):
            _assert_same(
                a, b,
                f"overlap diverged: kind={kind} n={n} seed={seed} "
                f"policy={name} of {chosen}",
            )

    @settings(**_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=12, max_value=40),
        stride=st.integers(min_value=2, max_value=4),
    )
    def test_restricted_target_sets(self, seed, n, stride):
        """Sampled target sets stay bit-identical across modes too (the
        pool serves the same pruned frames the sequential walk settles)."""
        hierarchy = _hierarchy("tree", n, seed)
        distribution = random_distribution(hierarchy, seed)
        sample = list(hierarchy.nodes[::stride])
        # A compiled plan pins the plan-walk path for every mode (a small
        # sample would otherwise take the sequential fused pruned walk).
        from repro.plan import compile_policy

        plan = compile_policy(
            make_policy("greedy-tree"), hierarchy, distribution
        )
        kwargs = dict(targets=sample, result_cache=False)
        reference = simulate_all_targets(plan, jobs=1, pool=False, **kwargs)
        for mode, result in {
            "jobs=2": simulate_all_targets(plan, jobs=2, pool=False, **kwargs),
            "warm pool": simulate_all_targets(plan, pool=_POOL, **kwargs),
        }.items():
            _assert_same(
                reference, result,
                f"{mode} diverged: n={n} seed={seed} stride={stride}",
            )
